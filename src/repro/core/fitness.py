"""The fitness metric (Equations 1 and 2) and ablation alternatives.

The paper's policies elect, at each list traversal, the application whose
per-thread bus bandwidth best matches the available bus bandwidth per
unallocated processor::

    Fitness = 1000 / (1 + |ABBW/proc - BBW/thread|)           (Eq. 1)

Quanta Window substitutes the windowed average of BBW/thread (Eq. 2) — the
*metric* is identical; only the estimate differs, so this module exposes a
single function.

Key property the paper calls out: when the bus is already overcommitted,
``ABBW/proc`` turns *negative*, making the application with the lowest
BBW/thread the fittest — the metric degrades gracefully into
"least-demanding first" under saturation. Tests pin this behaviour.

The ablation alternatives (ABL-F) answer "how much of the win is the
*shape* of Eq. 1?": a linear-distance score (same argmax ordering below
saturation but different tie structure), a lowest-bandwidth-first score
(ignores ABBW entirely), and a constant score (reduces the policy to
FCFS-rotation gang scheduling).
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "paper_fitness",
    "linear_fitness",
    "lowest_bandwidth_fitness",
    "constant_fitness",
    "FITNESS_FUNCTIONS",
]

#: Signature of a fitness function: (abbw_per_proc, bbw_per_thread) -> score.
FitnessFn = Callable[[float, float], float]


def paper_fitness(abbw_per_proc: float, bbw_per_thread: float, scale: float = 1000.0) -> float:
    """Equation (1): ``scale / (1 + |ABBW/proc − BBW/thread|)``.

    Higher is fitter. Maximised when the job's per-thread demand exactly
    matches the per-processor bandwidth budget.

    >>> paper_fitness(5.0, 5.0)
    1000.0
    >>> paper_fitness(5.0, 9.0)
    200.0
    >>> paper_fitness(-2.0, 1.0) > paper_fitness(-2.0, 6.0)  # saturation
    True
    """
    return scale / (1.0 + abs(abbw_per_proc - bbw_per_thread))


def linear_fitness(abbw_per_proc: float, bbw_per_thread: float) -> float:
    """Negative absolute distance: same argmax as Eq. 1, linear tails.

    Included to show that the *reciprocal shape* of Eq. 1 is not load-
    bearing for the argmax (it matters only if scores are combined).
    """
    return -abs(abbw_per_proc - bbw_per_thread)


def lowest_bandwidth_fitness(abbw_per_proc: float, bbw_per_thread: float) -> float:
    """Ignore ABBW; always prefer the least-demanding job.

    This is what Eq. 1 degenerates to under saturation; using it
    unconditionally forgoes the bandwidth-matching behaviour.
    """
    return -bbw_per_thread


def constant_fitness(abbw_per_proc: float, bbw_per_thread: float) -> float:
    """All jobs equally fit: selection falls back to list order (FCFS gang)."""
    return 0.0


#: Registry used by the ABL-F ablation sweep.
FITNESS_FUNCTIONS: dict[str, FitnessFn] = {
    "paper": paper_fitness,
    "linear": linear_fitness,
    "lowest-bw": lowest_bandwidth_fitness,
    "constant": constant_fitness,
}
