"""Block/unblock signalling between the CPU manager and applications.

The paper's mechanism, reproduced step by step:

* "The CPU manager sends a signal to an application thread which, in turn,
  is responsible to forward the signal to the rest of the application
  threads" — so delivery is a two-hop chain with real latency; the manager
  pays one signal, the application fans it out internally.
* "In order to avoid side-effects from possible inversion in the order
  block / unblock signals are sent and received, a thread blocks only if
  the number of received block signals exceeds the corresponding number of
  unblock signals. Such an inversion is quite probable, especially if the
  time interval between consecutive blocks and unblocks is narrow."

The inversion-protection counter is implemented exactly as described:
per-thread monotone counts of *received* block and unblock signals; the
thread's blocked state is ``received_blocks > received_unblocks``. Because
deliveries are engine events with per-hop latency, rapid quantum turnover
really does reorder deliveries in this simulator — the property tests
verify that the counter protocol converges to the last *sent* intent
regardless of delivery interleaving.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import ArenaError
from ..sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.machine import Machine
    from ..sim.engine import Engine

__all__ = ["SignalDispatcher"]


class SignalDispatcher:
    """Delivers block/unblock signals to application thread groups.

    Parameters
    ----------
    machine:
        The machine whose threads receive signals.
    engine:
        Event engine used for delayed deliveries.
    first_hop_latency_us:
        Manager → first application thread delivery latency.
    forward_latency_us:
        Per-thread forwarding latency within the application.
    on_block_change:
        Callback ``(tid, blocked)`` invoked whenever a thread's effective
        blocked state changes (wired to the kernel scheduler).
    drop_prob / duplicate_prob / jitter_us:
        Failure injection for robustness testing: each delivery is
        independently dropped, duplicated, or delayed by up to
        ``jitter_us`` extra microseconds. Requires ``rng`` when non-zero.
        The inversion-protection counters were designed for exactly this
        kind of misbehaviour; the property tests quantify what they do
        and do not survive (a *dropped* signal is unrecoverable until the
        next quantum's signals — the counters protect against reordering,
        not loss).
    rng:
        Random stream for failure injection.
    protocol:
        ``"counter"`` — the paper's inversion-protection counters (blocked
        iff received blocks exceed received unblocks): immune to
        reordering and duplicates, but a *lost* signal wedges the thread
        until an opposite-direction transition, and asymmetric resends
        poison the counts.
        ``"sequence"`` — last-writer-wins with per-send sequence numbers:
        a delivery applies its absolute state only if its sequence exceeds
        the last applied one. Immune to reordering, duplicates *and* — in
        combination with per-quantum intent resends
        (``ManagerConfig.resend_intent``) — loss.
    """

    def __init__(
        self,
        machine: "Machine",
        engine: "Engine",
        first_hop_latency_us: float = 30.0,
        forward_latency_us: float = 15.0,
        on_block_change: Callable[[int, bool], None] | None = None,
        handling_cost_lines: float = 0.0,
        drop_prob: float = 0.0,
        duplicate_prob: float = 0.0,
        jitter_us: float = 0.0,
        rng: "np.random.Generator | None" = None,
        protocol: str = "counter",
    ) -> None:
        if first_hop_latency_us < 0 or forward_latency_us < 0:
            raise ArenaError("signal latencies must be non-negative")
        if handling_cost_lines < 0:
            raise ArenaError("signal handling cost must be non-negative")
        if not 0.0 <= drop_prob <= 1.0 or not 0.0 <= duplicate_prob <= 1.0:
            raise ArenaError("failure probabilities must be in [0, 1]")
        if jitter_us < 0:
            raise ArenaError("jitter must be non-negative")
        if (drop_prob > 0 or duplicate_prob > 0 or jitter_us > 0) and rng is None:
            raise ArenaError("failure injection needs an rng")
        if protocol not in ("counter", "sequence"):
            raise ArenaError(f"unknown signal protocol {protocol!r}")
        self.protocol = protocol
        self._machine = machine
        self._engine = engine
        self._first_hop = first_hop_latency_us
        self._forward = forward_latency_us
        self._on_block_change = on_block_change
        self._cost_lines = handling_cost_lines
        self._drop_prob = drop_prob
        self._duplicate_prob = duplicate_prob
        self._jitter = jitter_us
        self._rng = rng
        self._dropped = 0
        self._duplicated = 0
        # Per-thread received-signal counters (the paper's inversion guard).
        self._received_blocks: dict[int, int] = {}
        self._received_unblocks: dict[int, int] = {}
        # Sequence-protocol state: send counter + last applied per thread.
        self._send_seq = 0
        self._applied_seq: dict[int, int] = {}
        self._sent = 0
        # Threads whose application disconnected: in-flight deliveries to
        # them are inert until a fresh send addresses them again.
        self._departed: set[int] = set()
        # Optional audit hook invoked with each *applied* delivery's tid
        # (after the departed/finished guards) — see repro.audit.
        self._audit_deliver: Callable[[int], None] | None = None

    def set_audit_hook(self, hook: Callable[[int], None] | None) -> None:
        """Install (or clear) the audit callback for applied deliveries."""
        self._audit_deliver = hook

    def is_departed(self, tid: int) -> bool:
        """Whether deliveries to ``tid`` are currently muted (departed)."""
        return tid in self._departed

    @property
    def signals_sent(self) -> int:
        """Total signals the manager has sent (one per application per change)."""
        return self._sent

    def received_counts(self, tid: int) -> tuple[int, int]:
        """(blocks, unblocks) received so far by thread ``tid``."""
        return (self._received_blocks.get(tid, 0), self._received_unblocks.get(tid, 0))

    def forget_thread(self, tid: int) -> None:
        """Drop all per-thread protocol state for a departed thread.

        Without this, the inversion-protection and sequence counters grow
        with every application that ever connected — and a reconnecting
        thread id would inherit a stale block/unblock balance from its
        previous life, wedging the protocol. Deliveries already in flight
        to the thread become inert (a stale block must not re-freeze a
        thread nobody manages any more); a later fresh send to the same
        tid re-enables delivery. Called on disconnect.
        """
        self._received_blocks.pop(tid, None)
        self._received_unblocks.pop(tid, None)
        self._applied_seq.pop(tid, None)
        self._departed.add(tid)

    # ------------------------------------------------------------------

    def send_block(self, tids: list[int]) -> None:
        """Send a block signal to an application (its thread group)."""
        self._send(tids, blocked=True)

    def send_unblock(self, tids: list[int]) -> None:
        """Send an unblock signal to an application (its thread group)."""
        self._send(tids, blocked=False)

    def _send(self, tids: list[int], blocked: bool) -> None:
        if not tids:
            raise ArenaError("signal sent to an empty thread group")
        self._sent += 1
        self._send_seq += 1
        seq = self._send_seq
        self._departed.difference_update(tids)
        # First hop: manager → tids[0]; then tids[0] forwards down the
        # chain, one forwarding latency per remaining thread.
        delay = self._first_hop
        for tid in tids:
            self._schedule_delivery(tid, blocked, delay, seq)
            delay += self._forward

    @property
    def dropped(self) -> int:
        """Deliveries lost to failure injection."""
        return self._dropped

    @property
    def duplicated(self) -> int:
        """Deliveries duplicated by failure injection."""
        return self._duplicated

    def _schedule_delivery(self, tid: int, blocked: bool, delay: float, seq: int) -> None:
        if self._rng is not None:
            if self._drop_prob > 0 and float(self._rng.random()) < self._drop_prob:
                self._dropped += 1
                return
            if self._jitter > 0:
                delay += float(self._rng.uniform(0.0, self._jitter))
            if self._duplicate_prob > 0 and float(self._rng.random()) < self._duplicate_prob:
                self._duplicated += 1
                extra = delay + float(self._rng.uniform(0.0, max(self._jitter, 1.0)))
                self._engine.schedule_after(
                    extra, lambda: self._deliver(tid, blocked, seq), priority=EventPriority.SIGNAL
                )
        self._engine.schedule_after(
            delay,
            lambda: self._deliver(tid, blocked, seq),
            priority=EventPriority.SIGNAL,
        )

    def _deliver(self, tid: int, blocked: bool, seq: int = 0) -> None:
        if tid in self._departed:
            return  # stale delivery to a disconnected application
        thread = self._machine.thread(tid)
        if thread.finished:
            return  # signal raced with exit; harmless
        if self._audit_deliver is not None:
            self._audit_deliver(tid)
        if self._cost_lines > 0.0:
            # Handling the signal disturbs the thread's cache state a bit.
            self._machine.add_rebuild_debt(tid, self._cost_lines)
        if blocked:
            self._received_blocks[tid] = self._received_blocks.get(tid, 0) + 1
        else:
            self._received_unblocks[tid] = self._received_unblocks.get(tid, 0) + 1
        if self.protocol == "sequence":
            # Last-writer-wins: stale (or duplicated) deliveries are inert.
            if seq <= self._applied_seq.get(tid, 0):
                return
            self._applied_seq[tid] = seq
            should_block = blocked
        else:
            # The paper's rule: block iff received blocks exceed unblocks.
            should_block = (
                self._received_blocks.get(tid, 0) > self._received_unblocks.get(tid, 0)
            )
        was_blocked = thread.blocked
        if should_block != was_blocked:
            self._machine.set_blocked(tid, should_block)
            self._machine.trace.record(
                self._machine.now,
                "signal.deliver",
                tid=tid,
                blocked=should_block,
            )
            if self._on_block_change is not None:
                self._on_block_change(tid, should_block)
