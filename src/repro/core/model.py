"""Analytic throughput prediction: the paper's model-driven direction.

The paper's conclusions propose deriving "analytic or empirical models of
the effect of sharing resources such as the bus ... on the performance of
multiprogrammed SMPs" and using them to "re-formulate the multiprocessor
scheduling problem as a multi-parametric optimization problem". This
module is that model: given the *measured* per-thread bandwidth estimates
the CPU manager already collects, it predicts the aggregate useful
progress of any candidate co-schedule using the same contention physics
the machine implements (shared equilibrium latency, capacity-conserving
saturation).

The predictor deliberately re-derives the equations instead of importing
:mod:`repro.hw.bus`: a real deployment would fit these parameters from
counter measurements, not read them out of the simulator. The default
constants match the paper platform's calibration; the `fit` helper
estimates the streaming ceiling from observations.

Used by :class:`repro.core.policies_model.ModelDrivenPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["ContentionModel", "GangPrediction"]


@dataclass(frozen=True)
class GangPrediction:
    """Predicted outcome of co-scheduling a set of threads.

    Attributes
    ----------
    speeds:
        Predicted execution speed per thread (solo = 1.0), request order.
    throughput_txus:
        Predicted aggregate bus transaction rate.
    progress:
        Sum of predicted speeds — the objective the model-driven policy
        maximizes (useful work per wall second across the machine).
    saturated:
        Whether the candidate saturates the bus.
    """

    speeds: tuple[float, ...]
    throughput_txus: float
    progress: float
    saturated: bool


class ContentionModel:
    """Analytic bus-sharing model over measured per-thread rates.

    Parameters
    ----------
    capacity_txus:
        Sustained bus capacity (the manager's STREAM belief).
    streaming_rate_txus:
        The back-to-back streaming ceiling of one thread (BBMA's 23.6 on
        the paper platform); demands at or above it count as fully
        memory-bound.
    mem_exponent:
        Demand → latency-sensitivity exponent (see ``BusConfig``).
    unfairness:
        Arbitration unfairness β (see ``BusConfig``).
    contention_coeff:
        Sub-saturation arbitration coefficient.
    """

    def __init__(
        self,
        capacity_txus: float = 29.5,
        streaming_rate_txus: float = 23.6,
        mem_exponent: float = 0.65,
        unfairness: float = 1.1,
        contention_coeff: float = 0.05,
    ) -> None:
        if capacity_txus <= 0 or streaming_rate_txus <= 0:
            raise ValueError("capacity and streaming rate must be positive")
        if not 0 < mem_exponent <= 1:
            raise ValueError("mem_exponent must be in (0, 1]")
        if unfairness < 0 or contention_coeff < 0:
            raise ValueError("unfairness/contention_coeff must be >= 0")
        self.capacity_txus = capacity_txus
        self.streaming_rate_txus = streaming_rate_txus
        self.mem_exponent = mem_exponent
        self.unfairness = unfairness
        self.contention_coeff = contention_coeff

    # -- pieces -----------------------------------------------------------------

    def mem_fraction(self, rate_txus: float) -> float:
        """Latency-sensitive fraction implied by a demand rate."""
        if rate_txus <= 0:
            return 0.0
        x = rate_txus / self.streaming_rate_txus
        return min(1.0, x**self.mem_exponent)

    def _speed(self, rate: float, lam_mult: float) -> float:
        """Thread speed at base-latency multiplier ``lam_mult`` (λ/λ0)."""
        m = self.mem_fraction(rate)
        if m == 0.0:
            return 1.0
        eff = 1.0 + (lam_mult - 1.0) * (1.0 + self.unfairness * (1.0 - m))
        return 1.0 / ((1.0 - m) + m * eff)

    def _throughput(self, rates: Sequence[float], lam_mult: float) -> float:
        return sum(r * self._speed(r, lam_mult) for r in rates)

    # -- prediction ---------------------------------------------------------------

    def predict(self, rates: Sequence[float]) -> GangPrediction:
        """Predict speeds and throughput for co-scheduled demand rates."""
        rates = [max(0.0, float(r)) for r in rates]
        if not rates:
            return GangPrediction(speeds=(), throughput_txus=0.0, progress=0.0, saturated=False)
        rho = sum(rates) / self.capacity_txus
        lam_c = 1.0 + self.contention_coeff * rho * rho
        if self._throughput(rates, lam_c) <= self.capacity_txus:
            speeds = tuple(self._speed(r, lam_c) for r in rates)
            tput = sum(r * s for r, s in zip(rates, speeds))
            return GangPrediction(speeds, tput, sum(speeds), saturated=False)
        lo, hi = lam_c, lam_c * 2.0
        for _ in range(100):
            if self._throughput(rates, hi) < self.capacity_txus:
                break
            hi *= 2.0
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if self._throughput(rates, mid) > self.capacity_txus:
                lo = mid
            else:
                hi = mid
        lam = 0.5 * (lo + hi)
        speeds = tuple(self._speed(r, lam) for r in rates)
        tput = sum(r * s for r, s in zip(rates, speeds))
        return GangPrediction(speeds, tput, sum(speeds), saturated=True)

    def predict_progress(self, rates: Sequence[float]) -> float:
        """Shortcut: only the progress objective."""
        return self.predict(rates).progress

    # -- empirical fitting ---------------------------------------------------------

    @classmethod
    def fit(
        cls,
        saturated_total_txus: float,
        streaming_solo_txus: float,
        **kwargs,
    ) -> "ContentionModel":
        """Build a model from two field measurements.

        ``saturated_total_txus`` — the plateau the counters show when the
        machine is clearly overcommitted (what STREAM measures);
        ``streaming_solo_txus`` — the highest per-thread rate ever
        observed (a streaming job running alone). These are exactly the
        quantities a deployed CPU manager can obtain from its own arena
        history, making the model self-calibrating.
        """
        return cls(
            capacity_txus=saturated_total_txus,
            streaming_rate_txus=streaming_solo_txus,
            **kwargs,
        )
