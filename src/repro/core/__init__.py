"""The paper's contribution: bus-bandwidth-aware gang scheduling.

* :mod:`repro.core.fitness` — Equation (1)/(2) fitness metric and the
  alternatives used by the fitness ablation.
* :mod:`repro.core.window` — moving-window and EWMA rate estimators.
* :mod:`repro.core.arena` — the shared arena: per-application descriptors,
  the connection protocol, and the circular application list.
* :mod:`repro.core.signals` — the block/unblock signal protocol with the
  paper's inversion-protection counters.
* :mod:`repro.core.policies` — the Latest Quantum and Quanta Window
  policies (plus the EWMA extension and an oracle for ablations).
* :mod:`repro.core.manager` — the user-level CPU manager event loop that
  ties it all together on top of the kernel scheduler.
"""

from .arena import AppDescriptor, SharedArena
from .fitness import paper_fitness
from .manager import CpuManager
from .model import ContentionModel, GangPrediction
from .policies import (
    BandwidthPolicy,
    EwmaPolicy,
    LatestQuantumPolicy,
    OraclePolicy,
    QuantaWindowPolicy,
    RandomGangPolicy,
)
from .policies_model import ModelDrivenPolicy
from .signals import SignalDispatcher
from .window import EwmaEstimator, MovingWindow

__all__ = [
    "AppDescriptor",
    "SharedArena",
    "paper_fitness",
    "CpuManager",
    "BandwidthPolicy",
    "LatestQuantumPolicy",
    "QuantaWindowPolicy",
    "EwmaPolicy",
    "OraclePolicy",
    "RandomGangPolicy",
    "ModelDrivenPolicy",
    "ContentionModel",
    "GangPrediction",
    "SignalDispatcher",
    "MovingWindow",
    "EwmaEstimator",
]
