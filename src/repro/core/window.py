"""Rate estimators: moving window and exponentially-weighted average.

The Quanta Window policy smooths each application's observed bus
transaction rate over "a window of previous samples"; the paper uses 5
samples, chosen so that "the average distance between the observed
transactions pattern and the moving window average [is limited] to 5 % for
applications with irregular bus bandwidth requirements". It also notes that
wider windows "would require techniques such as exponential reduction of
the weight of older samples" — the EWMA estimator implements exactly that
suggested extension.
"""

from __future__ import annotations

import math
from collections import deque

__all__ = ["MovingWindow", "EwmaEstimator"]


def _require_finite(sample: float) -> float:
    """Reject NaN/inf samples before they poison an estimator.

    A single NaN pushed into a moving window makes every subsequent
    average NaN (and an EWMA never recovers); the estimators fail fast
    instead. Negative rates are the *caller's* responsibility to clamp
    (the CPU manager sanitises at the ``on_sample`` boundary) — they are
    accepted here because the estimators are generic accumulators.
    """
    value = float(sample)
    if not math.isfinite(value):
        raise ValueError(f"estimator sample must be finite, got {value}")
    return value


class MovingWindow:
    """Fixed-length moving average over the most recent samples.

    Parameters
    ----------
    length:
        Window size in samples (paper: 5). Until the window fills, the
        average is over the samples seen so far.

    Examples
    --------
    >>> w = MovingWindow(3)
    >>> for x in (1.0, 2.0, 3.0, 4.0):
    ...     w.push(x)
    >>> w.average()
    3.0
    """

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ValueError(f"window length must be >= 1, got {length}")
        self._buf: deque[float] = deque(maxlen=length)
        self._length = length
        self._last_update_time: float | None = None

    @property
    def length(self) -> int:
        """Configured window length."""
        return self._length

    @property
    def count(self) -> int:
        """Samples currently held (≤ length)."""
        return len(self._buf)

    @property
    def last_update_time(self) -> float | None:
        """Timestamp of the last timestamped push, or ``None``.

        Staleness tracking: callers that pass ``time_us`` to :meth:`push`
        can ask *when* the estimate was last refreshed without reaching
        into the owner's bookkeeping. Untimestamped pushes leave it
        unchanged.
        """
        return self._last_update_time

    def push(self, sample: float, time_us: float | None = None) -> None:
        """Add one sample, evicting the oldest if the window is full.

        ``time_us``, when given, records when the sample was taken (see
        :attr:`last_update_time`).

        Raises
        ------
        ValueError
            If the sample is NaN or infinite.
        """
        self._buf.append(_require_finite(sample))
        if time_us is not None:
            self._last_update_time = float(time_us)

    def average(self) -> float | None:
        """Mean of the held samples, or ``None`` before the first push."""
        if not self._buf:
            return None
        return sum(self._buf) / len(self._buf)

    def last(self) -> float | None:
        """Most recent sample, or ``None`` before the first push."""
        return self._buf[-1] if self._buf else None

    def maximum(self) -> float | None:
        """Largest held sample, or ``None`` before the first push.

        Used by the model-driven policy's peak-rate prediction: planning
        co-schedules against the highest recently observed demand is
        conservative for bursty jobs.
        """
        return max(self._buf) if self._buf else None

    def clear(self) -> None:
        """Drop all samples (and the last-update timestamp)."""
        self._buf.clear()
        self._last_update_time = None


class EwmaEstimator:
    """Exponentially-weighted moving average (the paper's suggested extension).

    ``estimate ← alpha · sample + (1 − alpha) · estimate``. Unlike the
    fixed window it never fully forgets, but old samples decay
    geometrically — allowing an effectively wide window while retaining
    responsiveness (the trade-off the paper discusses for window sizing).

    Parameters
    ----------
    alpha:
        Weight of the newest sample, in (0, 1].

    Examples
    --------
    >>> e = EwmaEstimator(0.5)
    >>> e.push(4.0); e.push(8.0)
    >>> e.average()
    6.0
    """

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._value: float | None = None
        self._last_update_time: float | None = None

    @property
    def alpha(self) -> float:
        """Newest-sample weight."""
        return self._alpha

    @property
    def last_update_time(self) -> float | None:
        """Timestamp of the last timestamped push, or ``None``.

        Same contract as :attr:`MovingWindow.last_update_time`.
        """
        return self._last_update_time

    def push(self, sample: float, time_us: float | None = None) -> None:
        """Fold one sample into the estimate.

        ``time_us``, when given, records when the sample was taken (see
        :attr:`last_update_time`).

        Raises
        ------
        ValueError
            If the sample is NaN or infinite.
        """
        value = _require_finite(sample)
        if self._value is None:
            self._value = value
        else:
            self._value = self._alpha * value + (1.0 - self._alpha) * self._value
        if time_us is not None:
            self._last_update_time = float(time_us)

    def average(self) -> float | None:
        """Current estimate, or ``None`` before the first push."""
        return self._value

    def last(self) -> float | None:
        """Alias of :meth:`average` (the EWMA *is* the state)."""
        return self._value

    def clear(self) -> None:
        """Reset to the no-samples state."""
        self._value = None
        self._last_update_time = None
