"""The shared arena: the CPU manager's communication medium.

The paper's CPU manager is a user-level server. Each application sends a
*connection* message (over a UNIX socket); the manager responds by creating
a **shared arena** — a shared-memory page per application — and tells the
application how often to publish its bus-transaction counts there (twice
per scheduling quantum). The manager also appends a descriptor for the
application to a doubly-linked *circular list*, whose rotation implements
the no-starvation guarantee (previously-running jobs move to the back; the
head is always allocated).

This module simulates that protocol one-to-one:

* :class:`SharedArena` — the manager-side registry: connect / disconnect,
  descriptor lookup, and the circular list with its rotation primitives.
* :class:`AppDescriptor` — one application's arena page: identity, thread
  ids, and the latest published cumulative counters, exactly the values
  the real runtime library accumulates from per-thread performance
  counters before writing them to the page.

The publishing side (polling each thread's counters and accumulating) lives
in the CPU manager's sampling loop, standing in for the paper's runtime
library that is linked into each application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ArenaError

__all__ = ["AppDescriptor", "SharedArena", "ArenaSample"]


@dataclass(frozen=True)
class ArenaSample:
    """One publication of an application's accumulated counters.

    Attributes
    ----------
    time_us:
        Simulated time of the publication.
    cum_transactions:
        Sum of all application threads' bus-transaction counters.
    cum_runtime_us:
        Sum of all application threads' on-CPU time.
    """

    time_us: float
    cum_transactions: float
    cum_runtime_us: float


@dataclass
class AppDescriptor:
    """Arena page + manager-side descriptor of one connected application.

    Attributes
    ----------
    app_id:
        Application instance id.
    name:
        Human-readable name.
    tids:
        The application's thread ids (the runtime library polls these).
    samples:
        Published samples, most recent last. The manager-side policies
        consume deltas between consecutive samples.
    """

    app_id: int
    name: str
    tids: list[int]
    samples: list[ArenaSample] = field(default_factory=list)
    connected: bool = True

    @property
    def n_threads(self) -> int:
        """Thread count (the divisor of BBW/thread)."""
        return len(self.tids)

    @property
    def latest(self) -> ArenaSample | None:
        """The most recent publication, if any."""
        return self.samples[-1] if self.samples else None

    def publish(self, sample: ArenaSample) -> None:
        """Append a publication (cumulative counters must not decrease).

        Raises
        ------
        ArenaError
            If the application is disconnected or counters regress.
        """
        if not self.connected:
            raise ArenaError(f"publish on disconnected application {self.name}")
        last = self.latest
        if last is not None:
            if sample.time_us < last.time_us:
                raise ArenaError(f"{self.name}: publication time went backwards")
            if (
                sample.cum_transactions < last.cum_transactions - 1e-9
                or sample.cum_runtime_us < last.cum_runtime_us - 1e-9
            ):
                raise ArenaError(f"{self.name}: cumulative counters regressed")
        self.samples.append(sample)

    def rate_between(self, earlier: ArenaSample, later: ArenaSample) -> float | None:
        """Per-thread tx/µs between two samples, or ``None`` if it did not run.

        Rates are computed against *accumulated run time*, not wall time,
        so a partially-scheduled quantum still yields an unbiased rate —
        matching the paper's equipartitioning of application bandwidth
        across its threads.
        """
        d_run = later.cum_runtime_us - earlier.cum_runtime_us
        if d_run <= 1e-9:
            return None
        d_tx = later.cum_transactions - earlier.cum_transactions
        per_thread_time = d_run / self.n_threads
        return (d_tx / self.n_threads) / per_thread_time


class SharedArena:
    """Manager-side registry of connected applications and the circular list.

    Examples
    --------
    >>> arena = SharedArena(sample_period_us=100_000.0)
    >>> d = arena.connect(app_id=1, name="CG#1", tids=[10, 11])
    >>> arena.list_order()
    [1]
    """

    def __init__(self, sample_period_us: float) -> None:
        if sample_period_us <= 0:
            raise ArenaError("sample period must be positive")
        #: How often applications are told to publish (the connection
        #: response carries this, per the paper).
        self.sample_period_us = sample_period_us
        self._descriptors: dict[int, AppDescriptor] = {}
        self._order: list[int] = []  # circular list, head first

    # -- connection protocol ---------------------------------------------------

    def connect(self, app_id: int, name: str, tids: list[int]) -> AppDescriptor:
        """Handle a connection message: create the arena page + descriptor.

        Raises
        ------
        ArenaError
            If the application is already connected or has no threads.
        """
        if app_id in self._descriptors and self._descriptors[app_id].connected:
            raise ArenaError(f"application {name} (id {app_id}) already connected")
        if not tids:
            raise ArenaError(f"application {name} connected with no threads")
        desc = AppDescriptor(app_id=app_id, name=name, tids=list(tids))
        self._descriptors[app_id] = desc
        self._order.append(app_id)
        return desc

    def disconnect(self, app_id: int) -> None:
        """Handle a disconnection: drop the descriptor from the list."""
        desc = self.descriptor(app_id)
        desc.connected = False
        self._order = [a for a in self._order if a != app_id]

    def descriptor(self, app_id: int) -> AppDescriptor:
        """Look up a descriptor.

        Raises
        ------
        ArenaError
            If the application never connected.
        """
        try:
            return self._descriptors[app_id]
        except KeyError:
            raise ArenaError(f"unknown application id {app_id}") from None

    def connected(self) -> list[AppDescriptor]:
        """Connected descriptors in current list order."""
        return [self._descriptors[a] for a in self._order]

    # -- circular list ----------------------------------------------------------

    def list_order(self) -> list[int]:
        """Current app-id order, head first."""
        return list(self._order)

    def move_to_back(self, app_ids: list[int]) -> None:
        """Move the given applications to the back, preserving relative order.

        This is the paper's end-of-quantum rotation: "The previously
        running jobs are then transferred to the end of the applications
        list", which guarantees the head is always a job that waited
        longest — the no-starvation anchor.
        """
        moving = set(app_ids)
        unknown = moving - set(self._order)
        if unknown:
            raise ArenaError(f"cannot rotate unknown applications {sorted(unknown)}")
        kept = [a for a in self._order if a not in moving]
        moved = [a for a in self._order if a in moving]
        self._order = kept + moved
