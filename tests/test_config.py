"""Unit tests for the configuration dataclasses (eager validation)."""

import dataclasses

import pytest

from repro.config import (
    BusConfig,
    CacheConfig,
    LinuxSchedConfig,
    MachineConfig,
    ManagerConfig,
)
from repro.errors import ConfigError


class TestBusConfig:
    def test_defaults_match_paper_platform(self):
        cfg = BusConfig()
        assert cfg.capacity_txus == pytest.approx(29.5)
        assert cfg.lam0_us == pytest.approx(1 / 23.6)
        assert cfg.arbitration == "shared-latency"

    def test_mem_exponent_alpha_is_065_everywhere(self):
        # DESIGN.md §4 documents α = 0.65; the config default and the
        # standalone helper must agree with it exactly (an earlier draft
        # had them diverge at 0.7 vs 0.65).
        import inspect

        from repro.hw.bus import derive_mem_fraction

        helper_default = inspect.signature(derive_mem_fraction).parameters[
            "mem_exponent"
        ].default
        assert BusConfig().mem_exponent == 0.65
        assert helper_default == BusConfig().mem_exponent

    def test_solve_cache_defaults_on_and_can_be_disabled(self):
        assert BusConfig().solve_cache_size == 1024
        assert BusConfig(solve_cache_size=0).solve_cache_size == 0
        with pytest.raises(ConfigError):
            BusConfig(solve_cache_size=-1)

    @pytest.mark.parametrize(
        "kw",
        [
            {"capacity_txus": 0.0},
            {"capacity_txus": -1.0},
            {"lam0_us": 0.0},
            {"contention_coeff": -0.1},
            {"mem_exponent": 0.0},
            {"mem_exponent": 1.5},
            {"unfairness": -1.0},
            {"arbitration": "round-robin"},
            {"fixed_point_tol": 0.5},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ConfigError):
            BusConfig(**kw)

    def test_to_dict_roundtrip(self):
        cfg = BusConfig(capacity_txus=10.0)
        d = cfg.to_dict()
        assert d["capacity_txus"] == 10.0
        assert BusConfig(**d) == cfg

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BusConfig().capacity_txus = 1.0  # type: ignore[misc]


class TestCacheConfig:
    def test_total_lines(self):
        assert CacheConfig().total_lines == 4096

    @pytest.mark.parametrize(
        "kw",
        [
            {"size_bytes": 0},
            {"line_bytes": 0},
            {"size_bytes": 100, "line_bytes": 64},  # not a multiple
            {"rebuild_fill_rate_txus": 0.0},
            {"rebuild_progress_factor": 0.0},
            {"rebuild_progress_factor": 1.5},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ConfigError):
            CacheConfig(**kw)


class TestMachineConfig:
    def test_default_is_paper_machine(self):
        cfg = MachineConfig()
        assert cfg.n_cpus == 4

    def test_needs_cpu(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_cpus=0)

    def test_to_dict_nested(self):
        d = MachineConfig().to_dict()
        assert d["bus"]["capacity_txus"] == pytest.approx(29.5)
        assert d["cache"]["size_bytes"] == 256 * 1024


class TestLinuxSchedConfig:
    def test_default_slice_is_60ms(self):
        cfg = LinuxSchedConfig()
        assert cfg.timeslice_us == pytest.approx(60_000.0)

    @pytest.mark.parametrize(
        "kw",
        [
            {"tick_us": 0.0},
            {"default_ticks": 0},
            {"affinity_bonus": -1},
            {"rebalance_prob": 1.5},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ConfigError):
            LinuxSchedConfig(**kw)


class TestManagerConfig:
    def test_paper_defaults(self):
        cfg = ManagerConfig()
        assert cfg.quantum_us == 200_000.0
        assert cfg.samples_per_quantum == 2
        assert cfg.window_length == 5
        assert cfg.sample_period_us == pytest.approx(100_000.0)

    @pytest.mark.parametrize(
        "kw",
        [
            {"quantum_us": 0.0},
            {"samples_per_quantum": 0},
            {"window_length": 0},
            {"fitness_scale": 0.0},
            {"signal_first_hop_us": -1.0},
            {"signal_cost_lines": -1.0},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ConfigError):
            ManagerConfig(**kw)

    def test_replace_produces_new_valid_config(self):
        cfg = dataclasses.replace(ManagerConfig(), quantum_us=100_000.0)
        assert cfg.sample_period_us == pytest.approx(50_000.0)
