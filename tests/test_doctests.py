"""Run the library's docstring examples as part of the suite.

Keeps every ``>>>`` example in the public docstrings honest without
requiring a separate ``--doctest-modules`` invocation.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

# Discover every repro submodule. __main__ is excluded: importing it runs
# the CLI (that's its job).
_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if name != "repro.__main__"
)


@pytest.mark.parametrize("module_name", _MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"


def test_package_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
