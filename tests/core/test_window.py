"""Moving-window and EWMA estimator tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window import EwmaEstimator, MovingWindow

_samples = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=50
)


class TestMovingWindow:
    def test_empty_average_none(self):
        assert MovingWindow(3).average() is None
        assert MovingWindow(3).last() is None

    def test_partial_fill(self):
        w = MovingWindow(5)
        w.push(2.0)
        w.push(4.0)
        assert w.average() == 3.0
        assert w.count == 2

    def test_eviction(self):
        w = MovingWindow(3)
        for x in (1.0, 2.0, 3.0, 4.0):
            w.push(x)
        assert w.average() == 3.0
        assert w.last() == 4.0

    def test_length_one_is_latest(self):
        w = MovingWindow(1)
        w.push(5.0)
        w.push(9.0)
        assert w.average() == 9.0

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            MovingWindow(0)

    def test_clear(self):
        w = MovingWindow(3)
        w.push(1.0)
        w.clear()
        assert w.average() is None

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_sample_rejected(self, bad):
        # A NaN pushed into the window would poison every average it
        # touches; the estimator refuses it at the boundary instead.
        w = MovingWindow(3)
        w.push(2.0)
        with pytest.raises(ValueError):
            w.push(bad)
        assert w.average() == 2.0  # the rejected sample left no trace
        assert w.count == 1

    @given(_samples, st.integers(min_value=1, max_value=10))
    @settings(max_examples=200, deadline=None)
    def test_average_bounded_by_extremes(self, samples, length):
        w = MovingWindow(length)
        for s in samples:
            w.push(s)
        recent = samples[-length:]
        assert min(recent) - 1e-9 <= w.average() <= max(recent) + 1e-9

    @given(_samples)
    @settings(max_examples=100, deadline=None)
    def test_window_smooths_at_most_latest(self, samples):
        # |avg - mean(all)| <= |latest - mean| is not universally true; the
        # meaningful invariant: the window average equals the arithmetic
        # mean of the retained samples.
        w = MovingWindow(5)
        for s in samples:
            w.push(s)
        retained = samples[-5:]
        assert w.average() == pytest.approx(sum(retained) / len(retained))


class TestEwma:
    def test_first_sample_is_estimate(self):
        e = EwmaEstimator(0.2)
        e.push(10.0)
        assert e.average() == 10.0

    def test_update_rule(self):
        e = EwmaEstimator(0.5)
        e.push(4.0)
        e.push(8.0)
        assert e.average() == 6.0

    def test_alpha_one_tracks_latest(self):
        e = EwmaEstimator(1.0)
        e.push(3.0)
        e.push(7.0)
        assert e.average() == 7.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaEstimator(0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(1.5)

    def test_clear(self):
        e = EwmaEstimator(0.5)
        e.push(1.0)
        e.clear()
        assert e.average() is None

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_sample_rejected(self, bad):
        e = EwmaEstimator(0.5)
        e.push(4.0)
        with pytest.raises(ValueError):
            e.push(bad)
        assert e.average() == 4.0

    @given(_samples, st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_estimate_bounded_by_extremes(self, samples, alpha):
        e = EwmaEstimator(alpha)
        for s in samples:
            e.push(s)
        assert min(samples) - 1e-9 <= e.average() <= max(samples) + 1e-9

    @given(st.floats(min_value=0.0, max_value=50.0), st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_constant_stream_converges_exactly(self, value, alpha):
        e = EwmaEstimator(alpha)
        for _ in range(10):
            e.push(value)
        assert e.average() == pytest.approx(value)


class TestLastUpdateTime:
    """Both estimators expose when they last ingested a sample."""

    @pytest.mark.parametrize("make", [lambda: MovingWindow(3), lambda: EwmaEstimator(0.5)])
    def test_starts_unset(self, make):
        assert make().last_update_time is None

    @pytest.mark.parametrize("make", [lambda: MovingWindow(3), lambda: EwmaEstimator(0.5)])
    def test_untimed_push_leaves_unset(self, make):
        est = make()
        est.push(1.0)
        assert est.last_update_time is None

    @pytest.mark.parametrize("make", [lambda: MovingWindow(3), lambda: EwmaEstimator(0.5)])
    def test_tracks_latest_timed_push(self, make):
        est = make()
        est.push(1.0, time_us=10.0)
        assert est.last_update_time == 10.0
        est.push(2.0, time_us=35.5)
        assert est.last_update_time == 35.5
        # An untimed push in between does not rewind the timestamp.
        est.push(3.0)
        assert est.last_update_time == 35.5

    @pytest.mark.parametrize("make", [lambda: MovingWindow(3), lambda: EwmaEstimator(0.5)])
    def test_clear_resets_timestamp(self, make):
        est = make()
        est.push(1.0, time_us=10.0)
        est.clear()
        assert est.last_update_time is None
