"""Tests for the model-driven policy (whole-set optimization)."""

import pytest

from repro.core.policies import JobView
from repro.core.policies_model import ModelDrivenPolicy
from repro.errors import SchedulingError


def _jobs(widths):
    return [JobView(app_id=i + 1, width=w, name=f"a{i}") for i, w in enumerate(widths)]


def _feed(pol, app_id, rate, n=5, saturated=False):
    for _ in range(n):
        pol.on_sample(app_id, rate, saturated=saturated)


class TestSelection:
    def test_head_always_included(self):
        pol = ModelDrivenPolicy()
        _feed(pol, 1, 23.6)  # head is a monster
        sel = pol.select(_jobs([2, 1, 1]), n_cpus=4)
        assert 1 in sel.app_ids

    def test_fits_machine(self):
        pol = ModelDrivenPolicy()
        sel = pol.select(_jobs([2, 2, 2, 1, 1]), n_cpus=4)
        widths = {j.app_id: j.width for j in _jobs([2, 2, 2, 1, 1])}
        assert sum(widths[a] for a in sel.app_ids) <= 4

    def test_avoids_saturating_combination(self):
        # head: 12 tx/us/thread x2; candidates: an equally hungry app and a
        # silent one. Packing both hungry apps saturates; the optimizer
        # must prefer the silent companion.
        pol = ModelDrivenPolicy()
        _feed(pol, 1, 12.0)
        _feed(pol, 2, 12.0)
        _feed(pol, 3, 0.01)
        sel = pol.select(_jobs([2, 2, 2]), n_cpus=4)
        assert sel.app_ids == (1, 3)

    def test_packs_compatible_jobs(self):
        # light jobs all fit without contention: use the whole machine
        pol = ModelDrivenPolicy()
        for app in (1, 2, 3, 4):
            _feed(pol, app, 1.0)
        sel = pol.select(_jobs([1, 1, 1, 1]), n_cpus=4)
        assert set(sel.app_ids) == {1, 2, 3, 4}

    def test_may_leave_cpus_idle_to_protect_throughput(self):
        # every candidate is a streaming monster: adding a third halves
        # everyone; the optimizer stops early (idle penalty is small)
        pol = ModelDrivenPolicy(idle_penalty=0.0)
        for app in (1, 2, 3, 4):
            _feed(pol, app, 23.6)
        sel = pol.select(_jobs([1, 1, 1, 1]), n_cpus=4)
        assert len(sel.app_ids) < 4

    def test_too_wide_rejected(self):
        pol = ModelDrivenPolicy()
        with pytest.raises(SchedulingError):
            pol.select(_jobs([5]), n_cpus=4)

    def test_empty(self):
        pol = ModelDrivenPolicy()
        assert pol.select([], n_cpus=4).app_ids == ()


class TestDeficitFairness:
    def test_waiting_jobs_gain_priority(self):
        pol = ModelDrivenPolicy(fairness_weight=1.0)
        for app in (1, 2, 3):
            _feed(pol, app, 0.01)
        jobs = _jobs([2, 2, 2])
        first = pol.select(jobs, n_cpus=4)
        left_out = next(a for a in (1, 2, 3) if a not in first.app_ids)
        # rotate: ran jobs move back; the left-out job heads next round,
        # but even without heading its deficit weight must have grown
        assert pol._deficit(left_out) == 1
        for a in first.app_ids:
            assert pol._deficit(a) == 0

    def test_zero_fairness_weight_allowed(self):
        pol = ModelDrivenPolicy(fairness_weight=0.0)
        _feed(pol, 1, 1.0)
        sel = pol.select(_jobs([2, 2]), n_cpus=4)
        assert 1 in sel.app_ids

    def test_invalid_params(self):
        with pytest.raises(SchedulingError):
            ModelDrivenPolicy(fairness_weight=-1.0)
        with pytest.raises(SchedulingError):
            ModelDrivenPolicy(idle_penalty=-1.0)
        with pytest.raises(SchedulingError):
            ModelDrivenPolicy(saturation_inflation=0.5)


class TestSaturationInflation:
    def test_saturated_only_estimates_inflated(self):
        pol = ModelDrivenPolicy(saturation_inflation=1.5)
        _feed(pol, 1, 8.0, saturated=True)
        assert pol.model_rate(1) == pytest.approx(12.0)

    def test_unsaturated_sighting_trusts_estimate(self):
        pol = ModelDrivenPolicy(saturation_inflation=1.5, use_peak=False)
        _feed(pol, 1, 8.0, saturated=True)
        pol.on_sample(1, 8.0, saturated=False)
        assert pol.model_rate(1) == pytest.approx(8.0)

    def test_inflation_capped_at_streaming_ceiling(self):
        pol = ModelDrivenPolicy(saturation_inflation=3.0)
        _feed(pol, 1, 20.0, saturated=True)
        assert pol.model_rate(1) == pytest.approx(pol.model.streaming_rate_txus)

    def test_peak_mode_uses_window_maximum(self):
        pol = ModelDrivenPolicy(use_peak=True)
        pol.on_sample(1, 2.0)
        pol.on_sample(1, 10.0)
        pol.on_sample(1, 4.0)
        assert pol.model_rate(1) == pytest.approx(10.0)

    def test_forget_clears_all_state(self):
        pol = ModelDrivenPolicy()
        _feed(pol, 1, 5.0)
        pol.select(_jobs([1]), n_cpus=4)
        pol.forget(1)
        assert pol.estimate(1) is None
        assert 1 not in pol._last_ran
        assert 1 not in pol._seen_unsaturated


class TestBeamSearch:
    def test_large_job_count_uses_beam_and_fits(self):
        pol = ModelDrivenPolicy()
        jobs = _jobs([1] * 20)  # > exact limit
        for j in jobs:
            _feed(pol, j.app_id, 1.0)
        sel = pol.select(jobs, n_cpus=4)
        assert 0 < len(sel.app_ids) <= 4
        assert 1 in sel.app_ids  # head rule holds under beam search
