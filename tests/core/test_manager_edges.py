"""Manager edge cases: small machines, degenerate workloads, re-connection."""

import numpy as np
import pytest

from repro.config import LinuxSchedConfig, MachineConfig, ManagerConfig
from repro.core.manager import CpuManager
from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.errors import ArenaError
from repro.hw.machine import Machine
from repro.sched.linux import LinuxScheduler
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.base import Application, ApplicationSpec
from repro.workloads.patterns import ConstantPattern


def _stack(n_cpus=4, quantum=20_000.0, policy=None):
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=n_cpus), engine, TraceRecorder())
    kernel = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
    kernel.attach(machine, engine, np.random.default_rng(1))
    manager = CpuManager(
        ManagerConfig(quantum_us=quantum), policy or LatestQuantumPolicy(), kernel
    )
    manager.attach(machine, engine, np.random.default_rng(2))
    return engine, machine, kernel, manager


def _app(machine, name="a", threads=1, rate=2.0, work=50_000.0):
    spec = ApplicationSpec(
        name=name,
        n_threads=threads,
        work_per_thread_us=work,
        pattern=ConstantPattern(rate),
        footprint_lines=128.0,
    )
    return Application.launch(spec, machine, np.random.default_rng(len(name)))


class TestSingleCpuMachine:
    def test_gang_of_one_on_one_cpu(self):
        engine, machine, kernel, manager = _stack(n_cpus=1)
        apps = [_app(machine, f"a{i}") for i in range(3)]
        manager.register_apps(apps)
        kernel.start()
        manager.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert all(a.finished for a in apps)
        # exactly one app ran per quantum on the single CPU
        for rec in machine.trace.records("manager.quantum"):
            assert len(rec.data["selected"]) <= 1


class TestSingleApp:
    def test_single_app_never_blocked(self):
        engine, machine, kernel, manager = _stack()
        app = _app(machine, "only", threads=2)
        manager.register_apps([app])
        kernel.start()
        manager.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert app.finished
        assert machine.trace.count("sched.block") == 0


class TestReconnection:
    def test_double_register_rejected(self):
        engine, machine, kernel, manager = _stack()
        app = _app(machine, "x")
        manager.register_app(app)
        with pytest.raises(ArenaError):
            manager.register_app(app)

    def test_sample_period_told_to_apps(self):
        engine, machine, kernel, manager = _stack(quantum=50_000.0)
        assert manager.arena.sample_period_us == pytest.approx(25_000.0)


class TestQuantumEdge:
    def test_manager_quiesces_after_all_disconnect(self):
        engine, machine, kernel, manager = _stack(quantum=10_000.0)
        apps = [_app(machine, f"a{i}", work=15_000.0) for i in range(2)]
        manager.register_apps(apps)
        kernel.start()
        manager.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        # run past several further boundaries: the quantum chain must stop
        # re-arming once the arena empties
        engine.run_until(engine.now + 100_000.0, advancer=machine)
        quanta_after = manager.quanta
        engine.run_until(engine.now + 100_000.0, advancer=machine)
        assert manager.quanta == quanta_after

    def test_window_policy_head_rotation_visits_everyone(self):
        engine, machine, kernel, manager = _stack(
            quantum=10_000.0, policy=QuantaWindowPolicy()
        )
        apps = [_app(machine, f"a{i}", threads=2, work=120_000.0) for i in range(4)]
        manager.register_apps(apps)
        kernel.start()
        manager.start()
        engine.run_until(100_000.0, advancer=machine)
        selected_ever = set()
        for rec in machine.trace.records("manager.quantum"):
            selected_ever.update(rec.data["selected"])
        assert selected_ever == {a.app_id for a in apps}


class TestWiderMachine:
    def test_eight_cpu_machine_selects_more_jobs(self):
        engine, machine, kernel, manager = _stack(n_cpus=8)
        apps = [_app(machine, f"a{i}", threads=2, work=80_000.0) for i in range(5)]
        manager.register_apps(apps)
        kernel.start()
        manager.start()
        engine.run_until(10_000.0, advancer=machine)
        rec = machine.trace.records("manager.quantum")[0]
        widths = {a.app_id: a.n_threads for a in apps}
        assert sum(widths[i] for i in rec.data["selected"]) <= 8
        assert len(rec.data["selected"]) >= 4  # 4x2=8 fits
