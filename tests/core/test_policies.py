"""Policy selection algorithm tests (Section 4 semantics)."""

import numpy as np
import pytest

from repro.core.fitness import constant_fitness
from repro.core.policies import (
    EwmaPolicy,
    JobView,
    LatestQuantumPolicy,
    OraclePolicy,
    QuantaWindowPolicy,
    RandomGangPolicy,
)
from repro.errors import SchedulingError


def _jobs(widths, names=None):
    names = names or [f"app{i}" for i in range(len(widths))]
    return [JobView(app_id=i + 1, width=w, name=n) for i, (w, n) in enumerate(zip(widths, names))]


class TestSelectionAlgorithm:
    def test_head_always_allocated(self):
        pol = LatestQuantumPolicy()
        # head is a bandwidth monster; it still runs (no starvation)
        pol.on_quantum(1, 23.6)
        sel = pol.select(_jobs([2, 2, 1, 1]), n_cpus=4)
        assert sel.app_ids[0] == 1

    def test_fills_all_cpus_when_possible(self):
        pol = LatestQuantumPolicy()
        sel = pol.select(_jobs([2, 1, 1, 2]), n_cpus=4)
        total = sum(2 if a in (1, 4) else 1 for a in sel.app_ids)
        assert total == 4

    def test_pairs_high_with_low(self):
        # capacity 29.5; head = high-bw app (11 tx/us/thread, 2 threads).
        # remaining budget/proc = (29.5-22)/2 = 3.75: the 4 tx/us job fits
        # better than the 11 tx/us one.
        pol = LatestQuantumPolicy()
        pol.on_quantum(1, 11.0)
        pol.on_quantum(2, 11.0)
        pol.on_quantum(3, 4.0)
        sel = pol.select(_jobs([2, 2, 2]), n_cpus=4)
        assert sel.app_ids == (1, 3)

    def test_saturation_picks_lowest_bandwidth(self):
        # head already overcommits the bus: ABBW negative, lowest-BBW wins
        pol = LatestQuantumPolicy(bus_capacity_txus=29.5)
        pol.on_quantum(1, 23.6)
        pol.on_quantum(2, 23.6)
        pol.on_quantum(3, 12.0)
        pol.on_quantum(4, 0.1)
        sel = pol.select(_jobs([2, 1, 1, 1]), n_cpus=4)
        # after head (2 cpus, 47.2 tx/us > capacity), remaining picks should
        # start with the 0.1 tx/us job
        assert 4 in sel.app_ids
        assert sel.app_ids.index(4) == 1

    def test_too_wide_job_rejected(self):
        pol = LatestQuantumPolicy()
        with pytest.raises(SchedulingError):
            pol.select(_jobs([5]), n_cpus=4)

    def test_widths_respected(self):
        pol = LatestQuantumPolicy()
        sel = pol.select(_jobs([3, 2, 2, 1]), n_cpus=4)
        # head (3 wide) + only the 1-wide job fits
        assert sel.app_ids == (1, 4)

    def test_empty_jobs(self):
        pol = LatestQuantumPolicy()
        sel = pol.select([], n_cpus=4)
        assert sel.app_ids == ()

    def test_abbw_trace_exposed(self):
        pol = LatestQuantumPolicy()
        pol.on_quantum(1, 10.0)
        sel = pol.select(_jobs([2, 1, 1]), n_cpus=4)
        assert len(sel.abbw_trace) == len(sel.app_ids) - 1
        # first post-head ABBW: (29.5 - 20)/2
        assert sel.abbw_trace[0] == pytest.approx((29.5 - 20.0) / 2.0)

    def test_unknown_estimate_treated_as_zero(self):
        pol = LatestQuantumPolicy()
        assert pol.estimate(42) is None
        assert pol.effective_estimate(42) == 0.0


class TestLatestQuantum:
    def test_uses_last_quantum_only(self):
        pol = LatestQuantumPolicy()
        pol.on_quantum(1, 5.0)
        pol.on_quantum(1, 9.0)
        assert pol.estimate(1) == 9.0

    def test_samples_ignored(self):
        pol = LatestQuantumPolicy()
        pol.on_sample(1, 100.0)
        assert pol.estimate(1) is None

    def test_forget(self):
        pol = LatestQuantumPolicy()
        pol.on_quantum(1, 5.0)
        pol.forget(1)
        assert pol.estimate(1) is None


class TestQuantaWindow:
    def test_averages_last_w_samples(self):
        pol = QuantaWindowPolicy(window_length=3)
        for r in (2.0, 4.0, 6.0, 8.0):
            pol.on_sample(1, r)
        assert pol.estimate(1) == pytest.approx(6.0)

    def test_smooths_bursts(self):
        latest = LatestQuantumPolicy()
        window = QuantaWindowPolicy(window_length=5)
        trace = [2.0, 2.0, 2.0, 2.0, 20.0]  # one burst sample
        for r in trace:
            window.on_sample(1, r)
            latest.on_quantum(1, r)
        assert latest.estimate(1) == 20.0
        assert window.estimate(1) == pytest.approx(5.6)

    def test_invalid_window(self):
        with pytest.raises(SchedulingError):
            QuantaWindowPolicy(window_length=0)

    def test_quantum_updates_ignored(self):
        pol = QuantaWindowPolicy()
        pol.on_quantum(1, 7.0)
        assert pol.estimate(1) is None


class TestEwma:
    def test_update(self):
        pol = EwmaPolicy(alpha=0.5)
        pol.on_sample(1, 4.0)
        pol.on_sample(1, 8.0)
        assert pol.estimate(1) == pytest.approx(6.0)


class TestOracle:
    def test_estimates_by_name(self):
        pol = OraclePolicy(true_rates={"CG": 11.65})
        sel = pol.select(
            [JobView(7, 2, "CG"), JobView(8, 1, "nBBMA"), JobView(9, 1, "nBBMA")], 4
        )
        assert pol.estimate(7) == 11.65
        assert pol.estimate(8) is None


class TestRandomGang:
    def test_needs_rng(self):
        pol = RandomGangPolicy()
        with pytest.raises(SchedulingError):
            pol.select(_jobs([1, 1]), n_cpus=2)

    def test_head_still_guaranteed(self):
        pol = RandomGangPolicy()
        pol.bind_rng(np.random.default_rng(0))
        for _ in range(10):
            sel = pol.select(_jobs([2, 1, 1, 1]), n_cpus=4)
            assert sel.app_ids[0] == 1

    def test_random_fills_vary(self):
        pol = RandomGangPolicy()
        pol.bind_rng(np.random.default_rng(0))
        outcomes = {pol.select(_jobs([1] * 6), n_cpus=2).app_ids for _ in range(20)}
        assert len(outcomes) > 1


class TestFitnessInjection:
    def test_constant_fitness_reduces_to_list_order(self):
        pol = QuantaWindowPolicy(fitness_fn=constant_fitness)
        for app, rate in ((1, 20.0), (2, 1.0), (3, 10.0)):
            pol.on_sample(app, rate)
        sel = pol.select(_jobs([1, 1, 1, 1]), n_cpus=3)
        assert sel.app_ids == (1, 2, 3)  # pure FCFS
