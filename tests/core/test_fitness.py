"""Fitness metric tests (Equation 1 semantics)."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.fitness import (
    FITNESS_FUNCTIONS,
    constant_fitness,
    linear_fitness,
    lowest_bandwidth_fitness,
    paper_fitness,
)

_vals = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestPaperFitness:
    def test_perfect_match_hits_scale(self):
        assert paper_fitness(7.0, 7.0) == 1000.0

    def test_equation_one_example(self):
        # Fitness = 1000 / (1 + |ABBW - BBW|)
        assert paper_fitness(5.0, 9.0) == pytest.approx(1000.0 / 5.0)

    def test_symmetric_in_distance(self):
        assert paper_fitness(5.0, 8.0) == paper_fitness(8.0, 5.0)

    def test_saturation_prefers_lowest_bandwidth(self):
        # "As soon as the bus gets overloaded, ABBW/proc turns negative and
        # the application with the lowest BBW/thread becomes the fittest."
        abbw = -3.0
        candidates = [0.1, 2.0, 11.0, 23.6]
        scores = [paper_fitness(abbw, c) for c in candidates]
        assert scores.index(max(scores)) == 0
        assert scores == sorted(scores, reverse=True)

    def test_custom_scale(self):
        assert paper_fitness(1.0, 1.0, scale=500.0) == 500.0

    @given(_vals, _vals)
    @settings(max_examples=200, deadline=None)
    def test_positive_and_bounded(self, abbw, bbw):
        f = paper_fitness(abbw, bbw)
        assert 0.0 < f <= 1000.0

    @given(_vals, _vals, _vals)
    @settings(max_examples=200, deadline=None)
    def test_closer_is_fitter(self, abbw, b1, b2):
        d1, d2 = abs(abbw - b1), abs(abbw - b2)
        assume(d2 - d1 > 1e-6)  # meaningfully closer (beyond float noise)
        assert paper_fitness(abbw, b1) > paper_fitness(abbw, b2)


class TestAlternatives:
    @given(_vals, _vals, _vals)
    @settings(max_examples=100, deadline=None)
    def test_linear_same_argmax_as_paper(self, abbw, b1, b2):
        # linear distance induces the same preference order as Eq. 1
        # (away from float-precision ties)
        assume(abs(abs(abbw - b1) - abs(abbw - b2)) > 1e-6)
        paper_prefers_b1 = paper_fitness(abbw, b1) > paper_fitness(abbw, b2)
        linear_prefers_b1 = linear_fitness(abbw, b1) > linear_fitness(abbw, b2)
        assert paper_prefers_b1 == linear_prefers_b1

    def test_lowest_bandwidth_ignores_abbw(self):
        assert lowest_bandwidth_fitness(5.0, 2.0) == lowest_bandwidth_fitness(-50.0, 2.0)
        assert lowest_bandwidth_fitness(0.0, 1.0) > lowest_bandwidth_fitness(0.0, 2.0)

    def test_constant_is_constant(self):
        assert constant_fitness(1.0, 2.0) == constant_fitness(-9.0, 99.0) == 0.0

    def test_registry_complete(self):
        assert set(FITNESS_FUNCTIONS) == {"paper", "linear", "lowest-bw", "constant"}
