"""Signal protocol tests: delivery chains and inversion protection."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.core.signals import SignalDispatcher
from repro.errors import ArenaError
from repro.hw.machine import Machine
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.patterns import ConstantPattern


def _setup(n_threads=3, first_hop=30.0, forward=15.0, cost=0.0):
    engine = Engine()
    machine = Machine(MachineConfig(), engine, TraceRecorder())
    tids = []
    for i in range(n_threads):
        t = machine.add_thread(
            f"t{i}", ConstantPattern(1.0).bind(np.random.default_rng(i)), 1e9
        )
        tids.append(t.tid)
    changes = []
    disp = SignalDispatcher(
        machine,
        engine,
        first_hop_latency_us=first_hop,
        forward_latency_us=forward,
        on_block_change=lambda tid, blocked: changes.append((tid, blocked)),
        handling_cost_lines=cost,
    )
    return engine, machine, tids, disp, changes


class TestDeliveryChain:
    def test_block_blocks_all_threads(self):
        engine, machine, tids, disp, changes = _setup()
        disp.send_block(tids)
        engine.run_until(1_000.0, advancer=machine)
        assert all(machine.thread(t).blocked for t in tids)
        assert len(changes) == 3

    def test_forwarding_latency_staggered(self):
        engine, machine, tids, disp, changes = _setup(first_hop=30.0, forward=15.0)
        disp.send_block(tids)
        engine.run_until(31.0, advancer=machine)
        assert machine.thread(tids[0]).blocked
        assert not machine.thread(tids[1]).blocked
        engine.run_until(46.0, advancer=machine)
        assert machine.thread(tids[1]).blocked
        assert not machine.thread(tids[2]).blocked
        engine.run_until(61.0, advancer=machine)
        assert machine.thread(tids[2]).blocked

    def test_unblock_after_block(self):
        engine, machine, tids, disp, changes = _setup()
        disp.send_block(tids)
        engine.run_until(1_000.0, advancer=machine)
        disp.send_unblock(tids)
        engine.run_until(2_000.0, advancer=machine)
        assert not any(machine.thread(t).blocked for t in tids)

    def test_empty_group_rejected(self):
        engine, machine, tids, disp, changes = _setup()
        with pytest.raises(ArenaError):
            disp.send_block([])

    def test_signals_sent_counter(self):
        engine, machine, tids, disp, changes = _setup()
        disp.send_block(tids)
        disp.send_unblock(tids)
        assert disp.signals_sent == 2


class TestInversionProtection:
    def test_rapid_block_unblock_converges_to_last_intent(self):
        # Send block then unblock back-to-back: regardless of delivery
        # interleaving, the final state must be unblocked (the paper's
        # received-counts rule).
        engine, machine, tids, disp, changes = _setup()
        disp.send_block(tids)
        disp.send_unblock(tids)
        engine.run_until(5_000.0, advancer=machine)
        assert not any(machine.thread(t).blocked for t in tids)
        blocks, unblocks = disp.received_counts(tids[0])
        assert blocks == 1 and unblocks == 1

    def test_unblock_before_block_never_leaves_blocked(self):
        # The classic inversion: an unblock for quantum N+1 overtakes ...
        # here: unblock delivered first, then a stale block. Counts protect:
        # blocked iff blocks > unblocks, so 1 block / 1 unblock = unblocked.
        engine, machine, tids, disp, changes = _setup()
        disp.send_unblock(tids)
        disp.send_block(tids)
        engine.run_until(5_000.0, advancer=machine)
        # blocks(1) > unblocks(1) is false -> threads stay runnable
        assert not any(machine.thread(t).blocked for t in tids)

    def test_double_block_needs_double_unblock_is_not_required(self):
        # blocked iff blocks > unblocks: 2 blocks + 1 unblock = still blocked;
        # a second unblock releases.
        engine, machine, tids, disp, changes = _setup(n_threads=1)
        disp.send_block(tids)
        disp.send_block(tids)
        disp.send_unblock(tids)
        engine.run_until(5_000.0, advancer=machine)
        assert machine.thread(tids[0]).blocked
        disp.send_unblock(tids)
        engine.run_until(10_000.0, advancer=machine)
        assert not machine.thread(tids[0]).blocked

    def test_signal_to_finished_thread_harmless(self):
        engine, machine, tids, disp, changes = _setup(n_threads=1)
        t = machine.thread(tids[0])
        t.finished = True  # simulate exit racing the signal
        disp.send_block(tids)
        engine.run_until(1_000.0, advancer=machine)
        assert not t.blocked


class TestHandlingCost:
    def test_cost_charged_as_rebuild_debt(self):
        engine, machine, tids, disp, changes = _setup(n_threads=1, cost=64.0)
        disp.send_unblock(tids)  # no state change, but the handler still runs
        engine.run_until(1_000.0, advancer=machine)
        assert machine.thread(tids[0]).rebuild_debt == pytest.approx(64.0)

    def test_negative_cost_rejected(self):
        engine, machine, tids, _, _ = _setup()
        with pytest.raises(ArenaError):
            SignalDispatcher(machine, engine, handling_cost_lines=-1.0)
