"""Property-based tests for the selection algorithm."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import JobView, LatestQuantumPolicy

_widths = st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=10)
_rates = st.dictionaries(
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    max_size=10,
)


def _policy_with(rates):
    pol = LatestQuantumPolicy()
    for app, rate in rates.items():
        pol.on_quantum(app, rate)
    return pol


@given(_widths, _rates)
@settings(max_examples=300, deadline=None)
def test_selection_fits_machine(widths, rates):
    jobs = [JobView(i + 1, w, f"a{i}") for i, w in enumerate(widths)]
    pol = _policy_with(rates)
    sel = pol.select(jobs, n_cpus=4)
    width_of = {j.app_id: j.width for j in jobs}
    assert sum(width_of[a] for a in sel.app_ids) <= 4


@given(_widths, _rates)
@settings(max_examples=300, deadline=None)
def test_no_duplicate_selection(widths, rates):
    jobs = [JobView(i + 1, w, f"a{i}") for i, w in enumerate(widths)]
    sel = _policy_with(rates).select(jobs, n_cpus=4)
    assert len(sel.app_ids) == len(set(sel.app_ids))


@given(_widths, _rates)
@settings(max_examples=300, deadline=None)
def test_head_rule(widths, rates):
    jobs = [JobView(i + 1, w, f"a{i}") for i, w in enumerate(widths)]
    sel = _policy_with(rates).select(jobs, n_cpus=4)
    fitting = [j.app_id for j in jobs if j.width <= 4]
    if fitting:
        assert sel.app_ids and sel.app_ids[0] == fitting[0]


@given(_widths, _rates)
@settings(max_examples=300, deadline=None)
def test_maximality_no_fitting_job_left_out_of_free_cpus(widths, rates):
    # The traversal loop must keep allocating while any unchosen job fits.
    jobs = [JobView(i + 1, w, f"a{i}") for i, w in enumerate(widths)]
    sel = _policy_with(rates).select(jobs, n_cpus=4)
    width_of = {j.app_id: j.width for j in jobs}
    free = 4 - sum(width_of[a] for a in sel.app_ids)
    for job in jobs:
        if job.app_id not in sel.app_ids:
            assert job.width > free


@given(st.lists(st.integers(min_value=1, max_value=10), min_size=2, max_size=6, unique=True))
@settings(max_examples=100, deadline=None)
def test_rotation_plus_head_rule_prevents_starvation(app_ids):
    # Simulate the manager's rotation: head runs, then moves to the back.
    # Every app must be selected within len(apps) quanta.
    pol = LatestQuantumPolicy()
    for app in app_ids:
        pol.on_quantum(app, 23.6)  # worst case: all look saturating
    order = list(app_ids)
    seen = set()
    for _ in range(len(order)):
        jobs = [JobView(a, 4, f"a{a}") for a in order]  # full-width: only head runs
        sel = pol.select(jobs, n_cpus=4)
        seen.update(sel.app_ids)
        ran = [a for a in order if a in sel.app_ids]
        order = [a for a in order if a not in sel.app_ids] + ran
    assert seen == set(app_ids)
