"""Regression tests for connect/disconnect churn in the CPU manager.

Covers the leaks and wedges an open system exposes: disconnecting a
*blocked* application must release every manager-side resource (estimator
state, boundary/sample checkpoints, per-thread signal counters) and must
unblock the application's threads; the quantum-boundary chain must revive
when an application connects after the arena emptied.
"""

import numpy as np
import pytest

from repro.config import LinuxSchedConfig, MachineConfig, ManagerConfig
from repro.core.manager import CpuManager
from repro.core.policies import LatestQuantumPolicy
from repro.hw.machine import Machine
from repro.sched.linux import LinuxScheduler
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.base import Application, ApplicationSpec
from repro.workloads.patterns import ConstantPattern


def _spec(i, width=2, rate=5.0, work=500_000.0):
    return ApplicationSpec(
        name=f"app{i}",
        n_threads=width,
        work_per_thread_us=work,
        pattern=ConstantPattern(rate),
        footprint_lines=256.0,
    )


def _setup(n_apps=3, quantum=20_000.0, work=500_000.0):
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=4), engine, TraceRecorder())
    apps = [
        Application.launch(_spec(i, work=work), machine, np.random.default_rng(i))
        for i in range(n_apps)
    ]
    kernel = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
    kernel.attach(machine, engine, np.random.default_rng(50))
    manager = CpuManager(ManagerConfig(quantum_us=quantum), LatestQuantumPolicy(), kernel)
    manager.attach(machine, engine, np.random.default_rng(51))
    manager.register_apps(apps)
    return engine, machine, apps, kernel, manager


class TestDisconnectBlockedApp:
    def _blocked_app(self):
        """Run until mid-quantum and return a setup with one blocked app."""
        engine, machine, apps, kernel, manager = _setup(n_apps=3)
        kernel.start()
        manager.start()
        engine.run_until(10_000.0, advancer=machine)
        blocked = [a for a in apps if a.blocked()]
        assert blocked, "expected an app blocked mid-quantum (3 x 2 threads on 4 CPUs)"
        return engine, machine, apps, kernel, manager, blocked[0]

    def test_descriptor_leaves_circular_list(self):
        engine, machine, apps, kernel, manager, victim = self._blocked_app()
        manager.disconnect_app(victim.app_id)
        assert victim.app_id not in manager.arena.list_order()
        assert not manager.arena.descriptor(victim.app_id).connected

    def test_no_manager_state_leaks(self):
        engine, machine, apps, kernel, manager, victim = self._blocked_app()
        manager.disconnect_app(victim.app_id)
        assert victim.app_id not in manager._boundary_samples
        assert victim.app_id not in manager._last_sample_seen
        assert victim.app_id not in manager._selected
        for tid in victim.tids:
            assert manager.signals.received_counts(tid) == (0, 0)

    def test_threads_unblocked_and_app_finishes(self):
        """A disconnected application must not stay frozen by a stale block."""
        engine, machine, apps, kernel, manager, victim = self._blocked_app()
        manager.disconnect_app(victim.app_id)
        assert not victim.blocked()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        assert victim.finished

    def test_in_flight_block_does_not_refreeze(self):
        """Signals already in flight at disconnect must land inert."""
        engine, machine, apps, kernel, manager, victim = self._blocked_app()
        # Put a fresh block in flight, then disconnect before delivery.
        manager.signals.send_block([t for t in victim.tids])
        manager.disconnect_app(victim.app_id)
        engine.run_until(engine.now + 5_000.0, advancer=machine)
        assert not victim.blocked()

    def test_disconnect_is_idempotent(self):
        engine, machine, apps, kernel, manager, victim = self._blocked_app()
        manager.disconnect_app(victim.app_id)
        manager.disconnect_app(victim.app_id)  # no-op, no raise
        manager.disconnect_app(999_999)  # never connected: no-op

    def test_boundary_reap_releases_everything(self):
        """The quantum boundary's own disconnect path must not leak either."""
        engine, machine, apps, kernel, manager = _setup(n_apps=2, work=30_000.0)
        kernel.start()
        manager.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        engine.run_until(engine.now + 2 * manager.config.quantum_us, advancer=machine)
        assert manager.arena.connected() == []
        assert manager._boundary_samples == {}
        assert manager._last_sample_seen == {}
        assert manager._selected == set()


class TestRateHygiene:
    """The manager sanitises measured rates before the estimators see them."""

    def test_clean_rate_drops_non_finite(self):
        from math import inf, nan

        from repro.core.manager import _clean_rate

        assert _clean_rate(nan) is None
        assert _clean_rate(inf) is None
        assert _clean_rate(-inf) is None

    def test_clean_rate_clamps_negatives(self):
        from repro.core.manager import _clean_rate

        assert _clean_rate(-0.5) == 0.0
        assert _clean_rate(-1e-12) == 0.0
        assert _clean_rate(0.0) == 0.0
        assert _clean_rate(3.25) == 3.25


class TestReconnect:
    """An app id reconnecting after a disconnect starts from a clean slate."""

    def _reconnected(self):
        """Disconnect a mid-run app, then connect the same id again."""
        engine, machine, apps, kernel, manager = _setup(n_apps=3)
        kernel.start()
        manager.start()
        engine.run_until(30_000.0, advancer=machine)
        victim = apps[0]
        manager.disconnect_app(victim.app_id)
        manager.register_app(victim)
        return engine, machine, apps, kernel, manager, victim

    def test_signal_counters_start_at_zero(self):
        engine, machine, apps, kernel, manager, victim = self._reconnected()
        for tid in victim.tids:
            assert manager.signals.received_counts(tid) == (0, 0)

    def test_first_sample_is_live_counter_snapshot(self):
        # The runtime library starts accumulating at connect time: the
        # baseline published at reconnection must be the threads' *current*
        # counters, not zero — otherwise the first quantum's rate spans the
        # application's previous life and poisons the estimator with a
        # lifetime average.
        engine, machine, apps, kernel, manager, victim = self._reconnected()
        snap = machine.counters.read_many(victim.tids)
        assert snap.bus_transactions > 0  # the previous life left traffic
        latest = manager.arena.descriptor(victim.app_id).latest
        assert latest is not None
        assert latest.cum_transactions == snap.bus_transactions
        assert latest.cum_runtime_us == snap.cycles_us
        assert manager._boundary_samples[victim.app_id] == latest

    def test_reconnected_threads_accept_signals_again(self):
        # forget_thread at disconnect must not leave the threads muted:
        # after reconnection the signal path works like on day one.
        engine, machine, apps, kernel, manager, victim = self._reconnected()
        assert not victim.blocked()
        live = [t for t in victim.tids if not machine.thread(t).finished]
        manager.signals.send_block(live)
        engine.run_until(engine.now + 5_000.0, advancer=machine)
        assert victim.blocked()
        manager.signals.send_unblock(live)
        engine.run_until(engine.now + 5_000.0, advancer=machine)
        assert not victim.blocked()

    def test_reconnected_app_rejoins_circular_list_and_finishes(self):
        engine, machine, apps, kernel, manager, victim = self._reconnected()
        assert victim.app_id in manager.arena.list_order()
        assert victim.app_id in manager.selected
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        assert victim.finished


class TestBoundaryRevival:
    def test_late_connection_revives_quantum_chain(self):
        """An app connecting after the arena emptied must still be managed."""
        engine, machine, apps, kernel, manager = _setup(n_apps=1, work=30_000.0)
        kernel.start()
        manager.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        # Let the boundary chain die (arena empties at the next boundary).
        engine.run_until(engine.now + 3 * manager.config.quantum_us, advancer=machine)
        assert manager.arena.connected() == []
        quanta_before = manager.quanta

        late = Application.launch(_spec(9, work=30_000.0), machine, np.random.default_rng(9))
        manager.register_app(late)
        kernel.on_new_threads()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        assert late.finished
        assert manager.quanta > quanta_before

    def test_quanta_do_not_tick_while_empty(self):
        engine, machine, apps, kernel, manager = _setup(n_apps=1, work=30_000.0)
        kernel.start()
        manager.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        engine.run_until(engine.now + 2 * manager.config.quantum_us, advancer=machine)
        quanta = manager.quanta
        engine.run_until(engine.now + 10 * manager.config.quantum_us, advancer=machine)
        assert manager.quanta == quanta
