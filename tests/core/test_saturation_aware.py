"""Saturation-aware estimation tests (the limit-cycle fix).

A bandwidth measurement taken while the whole workload consumed (nearly)
the full bus is only a *lower bound* on a job's demand: the job may have
been granted less than it asked for. Naive estimators let such samples
drag estimates down to ≈ capacity/n, at which point Equation 1 sees a
"perfect fit" in packing n streaming jobs together — a self-reinforcing
limit cycle that starves real applications of quanta (ABL-S demonstrates
it end-to-end). These tests pin the estimator-level behaviour.
"""

import pytest

from repro.config import LinuxSchedConfig, ManagerConfig
from repro.core.policies import EwmaPolicy, LatestQuantumPolicy, QuantaWindowPolicy


class TestLatestQuantum:
    def test_saturated_sample_never_lowers(self):
        pol = LatestQuantumPolicy()
        pol.on_quantum(1, 14.0)
        pol.on_quantum(1, 7.4, saturated=True)
        assert pol.estimate(1) == 14.0

    def test_saturated_sample_can_raise(self):
        pol = LatestQuantumPolicy()
        pol.on_quantum(1, 7.0)
        pol.on_quantum(1, 12.0, saturated=True)
        assert pol.estimate(1) == 12.0

    def test_unsaturated_sample_lowers(self):
        pol = LatestQuantumPolicy()
        pol.on_quantum(1, 14.0)
        pol.on_quantum(1, 2.0, saturated=False)
        assert pol.estimate(1) == 2.0

    def test_first_sample_accepted_even_saturated(self):
        pol = LatestQuantumPolicy()
        pol.on_quantum(1, 7.4, saturated=True)
        assert pol.estimate(1) == 7.4


class TestQuantaWindow:
    def test_saturated_samples_do_not_drag_average(self):
        pol = QuantaWindowPolicy(window_length=5)
        pol.on_sample(1, 14.0)
        before = pol.estimate(1)
        for _ in range(5):
            pol.on_sample(1, 7.0, saturated=True)
        assert pol.estimate(1) >= before - 1e-9

    def test_window_still_slides_upward_under_saturation(self):
        pol = QuantaWindowPolicy(window_length=3)
        pol.on_sample(1, 5.0)
        pol.on_sample(1, 20.0, saturated=True)  # higher: accepted
        assert pol.estimate(1) == pytest.approx(12.5)

    def test_unsaturated_recovery(self):
        pol = QuantaWindowPolicy(window_length=2)
        pol.on_sample(1, 14.0)
        pol.on_sample(1, 14.0)
        pol.on_sample(1, 1.0, saturated=False)
        pol.on_sample(1, 1.0, saturated=False)
        assert pol.estimate(1) == pytest.approx(1.0)


class TestEwma:
    def test_saturated_lower_sample_ignored(self):
        pol = EwmaPolicy(alpha=0.5)
        pol.on_sample(1, 16.0)
        pol.on_sample(1, 8.0, saturated=True)
        assert pol.estimate(1) == 16.0

    def test_saturated_higher_sample_folded(self):
        pol = EwmaPolicy(alpha=0.5)
        pol.on_sample(1, 8.0)
        pol.on_sample(1, 16.0, saturated=True)
        assert pol.estimate(1) == 12.0


class TestEndToEnd:
    def test_limit_cycle_without_awareness(self):
        """Long saturated runs: naive estimation starves the applications."""
        from repro.experiments.ablations import run_saturation_ablation

        results = run_saturation_ablation(
            app_names=("Barnes",), work_scale=0.6, seed=42
        )
        aware = results["saturation-aware"]["Barnes"]
        naive = results["naive"]["Barnes"]
        assert aware > naive + 10.0  # the cycle costs tens of percent

    def test_config_flag_plumbed(self):
        cfg = ManagerConfig(saturation_aware=False)
        assert not cfg.saturation_aware
        with pytest.raises(Exception):
            ManagerConfig(saturation_threshold=0.0)
