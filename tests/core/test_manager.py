"""CPU manager integration tests (arena + signals + policy + kernel)."""

import numpy as np
import pytest

from repro.config import LinuxSchedConfig, MachineConfig, ManagerConfig
from repro.core.manager import CpuManager
from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.errors import SchedulingError
from repro.hw.machine import Machine
from repro.sched.linux import LinuxScheduler
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.base import Application, ApplicationSpec
from repro.workloads.patterns import ConstantPattern


def _setup(widths_rates, policy=None, quantum=20_000.0, work=200_000.0, n_cpus=4):
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=n_cpus), engine, TraceRecorder())
    apps = []
    for i, (w, r) in enumerate(widths_rates):
        spec = ApplicationSpec(
            name=f"app{i}",
            n_threads=w,
            work_per_thread_us=work,
            pattern=ConstantPattern(r),
            footprint_lines=256.0,
        )
        apps.append(Application.launch(spec, machine, np.random.default_rng(i)))
    kernel = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
    kernel.attach(machine, engine, np.random.default_rng(50))
    manager = CpuManager(
        ManagerConfig(quantum_us=quantum), policy or LatestQuantumPolicy(), kernel
    )
    manager.attach(machine, engine, np.random.default_rng(51))
    manager.register_apps(apps)
    return engine, machine, apps, kernel, manager


def _run(engine, machine, apps, kernel, manager, until=None):
    kernel.start()
    manager.start()
    if until is None:
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
    else:
        engine.run_until(until, advancer=machine)


class TestLifecycle:
    def test_all_apps_complete(self):
        engine, machine, apps, kernel, manager = _setup([(2, 5.0), (2, 5.0), (1, 1.0), (1, 1.0)])
        _run(engine, machine, apps, kernel, manager)
        assert all(a.finished for a in apps)

    def test_quanta_advance(self):
        engine, machine, apps, kernel, manager = _setup([(2, 5.0), (2, 5.0), (2, 5.0)])
        _run(engine, machine, apps, kernel, manager)
        assert manager.quanta > 2

    def test_too_wide_app_rejected_at_connect(self):
        with pytest.raises(SchedulingError):
            _setup([(5, 1.0)])

    def test_finished_apps_disconnected(self):
        engine, machine, apps, kernel, manager = _setup([(2, 1.0), (2, 1.0)], work=30_000.0)
        _run(engine, machine, apps, kernel, manager)
        # disconnection happens at the next quantum boundary after an app
        # finishes; run one more boundary past completion
        engine.run_until(engine.now + 2 * manager.config.quantum_us, advancer=machine)
        assert manager.arena.connected() == []

    def test_double_attach_rejected(self):
        engine, machine, apps, kernel, manager = _setup([(1, 1.0)])
        with pytest.raises(SchedulingError):
            manager.attach(machine, engine, np.random.default_rng(0))


class TestGangBehaviour:
    def test_gang_integrity_while_running(self):
        engine, machine, apps, kernel, manager = _setup(
            [(2, 5.0), (2, 5.0), (2, 5.0), (2, 5.0)], work=300_000.0
        )
        kernel.start()
        manager.start()
        violations = []

        def check():
            running = set(machine.running_tids())
            for app in apps:
                live = {t.tid for t in app.threads if not t.finished}
                inter = running & live
                # mid-signal transients are allowed only briefly; check at
                # mid-quantum instants (10ms past each boundary)
                if inter and inter != live:
                    violations.append(machine.now)
            if not machine.all_finished():
                engine.schedule_after(20_000.0, check)

        engine.schedule_after(10_000.0, check)
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        assert violations == []

    def test_blocked_apps_make_no_progress_while_blocked(self):
        engine, machine, apps, kernel, manager = _setup(
            [(2, 5.0), (2, 5.0), (2, 5.0)], work=500_000.0
        )
        kernel.start()
        manager.start()
        engine.run_until(10_000.0, advancer=machine)
        blocked_apps = [a for a in apps if a.blocked()]
        assert blocked_apps, "expected at least one app blocked mid-quantum"
        before = {a.app_id: sum(t.work_done for t in a.threads) for a in blocked_apps}
        engine.run_until(15_000.0, advancer=machine)
        for a in blocked_apps:
            if a.blocked():
                assert sum(t.work_done for t in a.threads) == before[a.app_id]


class TestEstimation:
    def test_estimates_converge_to_true_rates(self):
        pol = QuantaWindowPolicy(window_length=5)
        engine, machine, apps, kernel, manager = _setup(
            [(2, 8.0), (2, 1.0)], policy=pol, work=400_000.0
        )
        _run(engine, machine, apps, kernel, manager)
        # both apps fit on 4 cpus simultaneously: rates measured near-solo
        est_a = pol.estimate(apps[0].app_id)
        # estimates are dropped at disconnect; run again with partial run
        # instead: re-check recorded estimate before completion
        # (estimate may be None after forget) — so assert via arena history:
        desc = manager.arena.descriptor(apps[0].app_id)
        assert len(desc.samples) >= 2
        rate = desc.rate_between(desc.samples[0], desc.samples[-1])
        assert rate == pytest.approx(8.0, rel=0.15)

    def test_sample_publications_only_while_running(self):
        engine, machine, apps, kernel, manager = _setup(
            [(2, 5.0), (2, 5.0), (2, 5.0)], work=400_000.0
        )
        kernel.start()
        manager.start()
        engine.run_until(60_000.0, advancer=machine)
        for desc in manager.arena.connected():
            # cumulative runtime in the arena never exceeds wall time x threads
            if desc.latest is not None:
                assert desc.latest.cum_runtime_us <= machine.now * desc.n_threads + 1e-6


class TestSignalsIntegration:
    def test_signals_sent_on_selection_changes(self):
        engine, machine, apps, kernel, manager = _setup(
            [(2, 5.0), (2, 5.0), (2, 5.0)], work=300_000.0
        )
        _run(engine, machine, apps, kernel, manager)
        assert manager.signals.signals_sent > 0

    def test_kernel_notified_of_unblocks(self):
        engine, machine, apps, kernel, manager = _setup(
            [(2, 5.0), (2, 5.0), (2, 5.0)], work=200_000.0
        )
        _run(engine, machine, apps, kernel, manager)
        # trace contains both block and unblock deliveries
        assert machine.trace.count("sched.block") > 0
        assert machine.trace.count("sched.unblock") > 0
