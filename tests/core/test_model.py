"""Tests for the analytic contention model (repro.core.model)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BusConfig
from repro.core.model import ContentionModel
from repro.hw.bus import BusModel

_rates = st.lists(
    st.floats(min_value=0.0, max_value=30.0, allow_nan=False), min_size=1, max_size=8
)


@pytest.fixture
def model() -> ContentionModel:
    return ContentionModel()


class TestPrediction:
    def test_empty(self, model):
        p = model.predict([])
        assert p.progress == 0.0
        assert not p.saturated

    def test_light_load_full_speed(self, model):
        p = model.predict([1.0, 2.0])
        assert all(s > 0.95 for s in p.speeds)
        assert not p.saturated

    def test_saturation_detected(self, model):
        p = model.predict([23.6] * 4)
        assert p.saturated
        assert p.throughput_txus == pytest.approx(29.5, rel=1e-3)

    def test_speeds_degrade_with_load(self, model):
        lone = model.predict([11.6]).speeds[0]
        crowded = model.predict([11.6] * 4).speeds[0]
        assert crowded < lone

    def test_matches_simulator_physics(self, model):
        """The predictor must agree with the hw bus model it mirrors."""
        bus = BusModel(BusConfig())
        for rates in ([11.655] * 4, [23.6] * 4, [1.4, 1.4, 23.6, 23.6], [2.0, 7.0]):
            predicted = model.predict(rates)
            actual = bus.solve([bus.request_for_rate(r) for r in rates])
            for ps, grant in zip(predicted.speeds, actual.grants):
                assert ps == pytest.approx(grant.speed, rel=0.02)

    def test_progress_shortcut(self, model):
        rates = [3.0, 5.0]
        assert model.predict_progress(rates) == model.predict(rates).progress


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"capacity_txus": 0.0},
            {"streaming_rate_txus": -1.0},
            {"mem_exponent": 0.0},
            {"mem_exponent": 2.0},
            {"unfairness": -1.0},
            {"contention_coeff": -0.1},
        ],
    )
    def test_invalid_params(self, kw):
        with pytest.raises(ValueError):
            ContentionModel(**kw)

    def test_fit_from_field_measurements(self):
        m = ContentionModel.fit(saturated_total_txus=28.0, streaming_solo_txus=22.0)
        assert m.capacity_txus == 28.0
        assert m.streaming_rate_txus == 22.0
        assert m.predict([22.0, 22.0]).saturated


class TestMemFraction:
    def test_streaming_fully_bound(self, model):
        assert model.mem_fraction(23.6) == 1.0
        assert model.mem_fraction(100.0) == 1.0

    def test_zero(self, model):
        assert model.mem_fraction(0.0) == 0.0

    def test_monotone(self, model):
        vals = [model.mem_fraction(r) for r in (0.5, 2.0, 8.0, 20.0)]
        assert vals == sorted(vals)


class TestProperties:
    @given(_rates)
    @settings(max_examples=200, deadline=None)
    def test_throughput_conserved(self, rates):
        p = ContentionModel().predict(rates)
        assert p.throughput_txus <= 29.5 * (1 + 1e-6)

    @given(_rates)
    @settings(max_examples=200, deadline=None)
    def test_speeds_unit_interval(self, rates):
        p = ContentionModel().predict(rates)
        for s in p.speeds:
            assert 0.0 < s <= 1.0 + 1e-9

    @given(_rates, st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=150, deadline=None)
    def test_adding_thread_never_helps(self, rates, extra):
        m = ContentionModel()
        before = m.predict(rates)
        after = m.predict(list(rates) + [extra])
        for b, a in zip(before.speeds, after.speeds):
            assert a <= b * (1 + 1e-9)
