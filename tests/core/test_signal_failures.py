"""Failure-injection tests for the signal protocol.

The paper's inversion-protection counters guard against *reordered*
deliveries; these tests quantify that guarantee and its limits under
injected drops, duplicates and jitter.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MachineConfig
from repro.core.signals import SignalDispatcher
from repro.errors import ArenaError
from repro.hw.machine import Machine
from repro.sim.engine import Engine
from repro.workloads.patterns import ConstantPattern


def _setup(**kw):
    engine = Engine()
    machine = Machine(MachineConfig(), engine)
    tids = [
        machine.add_thread(
            f"t{i}", ConstantPattern(1.0).bind(np.random.default_rng(i)), 1e9
        ).tid
        for i in range(2)
    ]
    disp = SignalDispatcher(machine, engine, **kw)
    return engine, machine, tids, disp


class TestValidation:
    def test_bad_probabilities_rejected(self):
        engine = Engine()
        machine = Machine(MachineConfig(), engine)
        with pytest.raises(ArenaError):
            SignalDispatcher(machine, engine, drop_prob=1.5, rng=np.random.default_rng(0))
        with pytest.raises(ArenaError):
            SignalDispatcher(machine, engine, jitter_us=-1.0, rng=np.random.default_rng(0))

    def test_injection_requires_rng(self):
        engine = Engine()
        machine = Machine(MachineConfig(), engine)
        with pytest.raises(ArenaError):
            SignalDispatcher(machine, engine, drop_prob=0.1)


class TestDuplicatesAndJitter:
    def test_duplicates_do_not_break_convergence(self):
        # Duplicated deliveries increment both counters symmetrically over
        # a block/unblock pair? No — a duplicated block adds +1 block only.
        # The guarantee that *does* hold: with every signal duplicated, a
        # block/unblock sequence still ends unblocked, because duplicates
        # preserve the send order statistics (2 blocks, 2 unblocks).
        engine, machine, tids, disp = _setup(
            duplicate_prob=1.0, rng=np.random.default_rng(3)
        )
        disp.send_block(tids)
        disp.send_unblock(tids)
        engine.run_until(10_000.0, advancer=machine)
        assert disp.duplicated > 0
        for tid in tids:
            blocks, unblocks = disp.received_counts(tid)
            assert blocks == unblocks == 2
            assert not machine.thread(tid).blocked

    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_jitter_reordering_converges_to_last_intent(self, seed, rounds):
        # Arbitrary jitter reorders deliveries across quanta; the counter
        # protocol must still converge to the last *sent* intent as long as
        # nothing is dropped.
        engine, machine, tids, disp = _setup(
            jitter_us=500.0, rng=np.random.default_rng(seed)
        )
        last = None
        for i in range(rounds):
            if i % 2 == 0:
                disp.send_block(tids)
                last = True
            else:
                disp.send_unblock(tids)
                last = False
        engine.run_until(100_000.0, advancer=machine)
        for tid in tids:
            assert machine.thread(tid).blocked == last

    def test_drop_counting(self):
        engine, machine, tids, disp = _setup(drop_prob=1.0, rng=np.random.default_rng(0))
        disp.send_block(tids)
        engine.run_until(5_000.0, advancer=machine)
        assert disp.dropped == 2
        # nothing delivered: threads stay runnable
        assert not any(machine.thread(t).blocked for t in tids)

    def test_drops_break_convergence_documented_limit(self):
        # The counters protect against reordering, NOT loss: dropping the
        # unblock leaves the thread blocked. This is the protocol's known
        # limit (the paper's manager resends intents every quantum, which
        # is the actual recovery mechanism).
        engine, machine, tids, disp = _setup()
        disp.send_block(tids)
        engine.run_until(1_000.0, advancer=machine)
        assert all(machine.thread(t).blocked for t in tids)
        # (no unblock ever delivered)


def _lossy_manager_run(protocol: str, resend: bool, max_time: float = 1e10):
    from repro.config import LinuxSchedConfig, ManagerConfig
    from repro.core.manager import CpuManager
    from repro.core.policies import QuantaWindowPolicy
    from repro.sched.linux import LinuxScheduler
    from repro.sim.trace import TraceRecorder
    from repro.workloads.base import Application, ApplicationSpec

    engine = Engine()
    machine = Machine(MachineConfig(), engine, TraceRecorder())
    apps = []
    for i in range(3):
        spec = ApplicationSpec(
            name=f"app{i}",
            n_threads=2,
            work_per_thread_us=150_000.0,
            pattern=ConstantPattern(4.0),
            footprint_lines=256.0,
        )
        apps.append(Application.launch(spec, machine, np.random.default_rng(i)))
    kernel = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
    kernel.attach(machine, engine, np.random.default_rng(5))
    manager = CpuManager(
        ManagerConfig(
            quantum_us=20_000.0,
            signal_protocol=protocol,
            resend_intent=resend,
        ),
        QuantaWindowPolicy(),
        kernel,
    )
    manager.attach(machine, engine, np.random.default_rng(6))
    # swap in a lossy dispatcher (keeps the kernel wiring and protocol)
    manager._signals = SignalDispatcher(
        machine,
        engine,
        on_block_change=kernel.on_block_change,
        drop_prob=0.15,
        jitter_us=200.0,
        rng=np.random.default_rng(7),
        protocol=protocol,
    )
    manager.register_apps(apps)
    kernel.start()
    manager.start()
    engine.run(advancer=machine, stop=machine.all_finished, max_time=max_time)
    return machine, manager, apps


class TestManagerRecoveryUnderLoss:
    def test_sequence_protocol_with_resend_survives_loss(self):
        """Sequence numbering + per-quantum intent resends recover from
        dropped signals: every job completes despite 15% loss."""
        machine, manager, apps = _lossy_manager_run("sequence", resend=True)
        assert all(a.finished for a in apps)
        assert manager.signals.dropped > 0

    def test_counter_protocol_wedges_under_loss(self):
        """The paper's counter protocol assumes a lossless channel (true
        for UNIX signals between live processes): with injected drops and
        transition-only sends, a lost unblock can wedge a job forever.
        This pins the documented limitation."""
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            _lossy_manager_run("counter", resend=False, max_time=2e7)

    def test_resend_requires_sequence_protocol(self):
        from repro.config import ManagerConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ManagerConfig(resend_intent=True, signal_protocol="counter")


class TestSequenceProtocol:
    def test_stale_delivery_ignored(self):
        engine, machine, tids, disp = _setup(
            jitter_us=1_000.0, rng=np.random.default_rng(5)
        )
        # rebuild with sequence protocol
        disp = SignalDispatcher(
            machine, engine, jitter_us=1_000.0, rng=np.random.default_rng(5),
            protocol="sequence",
        )
        # heavy jitter reorders; last-sent intent must win
        for _ in range(5):
            disp.send_block(tids)
            disp.send_unblock(tids)
        engine.run_until(60_000.0, advancer=machine)
        assert not any(machine.thread(t).blocked for t in tids)

    def test_duplicates_inert(self):
        engine, machine, tids, disp = _setup()
        disp = SignalDispatcher(
            machine, engine, duplicate_prob=1.0, rng=np.random.default_rng(1),
            protocol="sequence",
        )
        disp.send_block(tids)
        disp.send_unblock(tids)
        engine.run_until(10_000.0, advancer=machine)
        assert not any(machine.thread(t).blocked for t in tids)

    def test_unknown_protocol_rejected(self):
        engine = Engine()
        machine = Machine(MachineConfig(), engine)
        with pytest.raises(ArenaError):
            SignalDispatcher(machine, engine, protocol="udp")
