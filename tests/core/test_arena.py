"""Shared arena protocol tests."""

import pytest

from repro.core.arena import ArenaSample, SharedArena
from repro.errors import ArenaError


@pytest.fixture
def arena() -> SharedArena:
    return SharedArena(sample_period_us=100_000.0)


def _sample(t, tx, run):
    return ArenaSample(time_us=t, cum_transactions=tx, cum_runtime_us=run)


class TestConnection:
    def test_connect_creates_descriptor(self, arena):
        d = arena.connect(1, "CG#1", [10, 11])
        assert d.n_threads == 2
        assert arena.descriptor(1) is d
        assert arena.list_order() == [1]

    def test_double_connect_rejected(self, arena):
        arena.connect(1, "CG#1", [10])
        with pytest.raises(ArenaError):
            arena.connect(1, "CG#1", [10])

    def test_empty_threads_rejected(self, arena):
        with pytest.raises(ArenaError):
            arena.connect(1, "CG#1", [])

    def test_unknown_descriptor_rejected(self, arena):
        with pytest.raises(ArenaError):
            arena.descriptor(9)

    def test_disconnect_removes_from_list(self, arena):
        arena.connect(1, "a", [1])
        arena.connect(2, "b", [2])
        arena.disconnect(1)
        assert arena.list_order() == [2]
        assert not arena.descriptor(1).connected

    def test_invalid_period(self):
        with pytest.raises(ArenaError):
            SharedArena(sample_period_us=0.0)


class TestPublication:
    def test_publish_and_latest(self, arena):
        d = arena.connect(1, "a", [1, 2])
        d.publish(_sample(0.0, 0.0, 0.0))
        d.publish(_sample(100.0, 500.0, 180.0))
        assert d.latest.cum_transactions == 500.0

    def test_regression_rejected(self, arena):
        d = arena.connect(1, "a", [1])
        d.publish(_sample(100.0, 500.0, 100.0))
        with pytest.raises(ArenaError):
            d.publish(_sample(200.0, 400.0, 150.0))

    def test_time_regression_rejected(self, arena):
        d = arena.connect(1, "a", [1])
        d.publish(_sample(100.0, 1.0, 1.0))
        with pytest.raises(ArenaError):
            d.publish(_sample(50.0, 2.0, 2.0))

    def test_publish_after_disconnect_rejected(self, arena):
        d = arena.connect(1, "a", [1])
        arena.disconnect(1)
        with pytest.raises(ArenaError):
            d.publish(_sample(1.0, 1.0, 1.0))


class TestRates:
    def test_rate_equipartitions_over_threads(self, arena):
        # 2 threads, 1000 tx over 200 us of accumulated run time:
        # per-thread rate = (1000/2) / (200/2) = 5 tx/us
        d = arena.connect(1, "a", [1, 2])
        a = _sample(0.0, 0.0, 0.0)
        b = _sample(100.0, 1000.0, 200.0)
        assert d.rate_between(a, b) == pytest.approx(5.0)

    def test_rate_none_when_not_run(self, arena):
        d = arena.connect(1, "a", [1, 2])
        a = _sample(0.0, 100.0, 50.0)
        b = _sample(100.0, 100.0, 50.0)
        assert d.rate_between(a, b) is None

    def test_rate_uses_runtime_not_walltime(self, arena):
        # half-quantum run: same rate as a full-quantum run
        d = arena.connect(1, "a", [1, 2])
        full = d.rate_between(_sample(0, 0, 0), _sample(200, 2000, 400))
        half = d.rate_between(_sample(0, 0, 0), _sample(200, 1000, 200))
        assert full == pytest.approx(half)


class TestCircularList:
    def test_move_to_back_preserves_relative_order(self, arena):
        for i in range(1, 6):
            arena.connect(i, f"a{i}", [i])
        arena.move_to_back([2, 4])
        assert arena.list_order() == [1, 3, 5, 2, 4]

    def test_move_unknown_rejected(self, arena):
        arena.connect(1, "a", [1])
        with pytest.raises(ArenaError):
            arena.move_to_back([9])

    def test_rotation_cycles_every_app_to_head(self, arena):
        for i in range(1, 4):
            arena.connect(i, f"a{i}", [i])
        seen_heads = set()
        for _ in range(6):
            head = arena.list_order()[0]
            seen_heads.add(head)
            arena.move_to_back([head])
        assert seen_heads == {1, 2, 3}

    def test_connected_follows_order(self, arena):
        arena.connect(1, "a", [1])
        arena.connect(2, "b", [2])
        arena.move_to_back([1])
        assert [d.app_id for d in arena.connected()] == [2, 1]
