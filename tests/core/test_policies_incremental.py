"""Incremental selection: identical to the reference full-re-rank pass.

``BandwidthPolicy(incremental=True)`` (the default) caches per-app
effective estimates behind the estimator-invalidation hooks, keeps the
allocated-BBW sum as a running accumulator, and — for the stock
Equation 1 fitness — scores each traversal's candidates in one numpy
pass. None of that may change a single selection: this module drives
matched incremental/reference policy pairs through random estimator
histories and job mixes and requires equal ``Selection``s (app ids *and*
the bitwise ABBW trace), plus pins the cache-reuse counters and the
scalar fallbacks (custom fitness, RandomGangPolicy's rng-consuming
score).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    EwmaPolicy,
    JobView,
    LatestQuantumPolicy,
    QuantaWindowPolicy,
    RandomGangPolicy,
)

_rates = st.floats(min_value=0.0, max_value=40.0, allow_nan=False, allow_infinity=False)
_widths = st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=8)

# One estimator event: (app_index, rate, saturated, via_quantum-or-sample)
_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        _rates,
        st.booleans(),
        st.booleans(),
    ),
    max_size=24,
)


def _jobs(widths):
    return [JobView(app_id=i + 1, width=w, name=f"app{i}") for i, w in enumerate(widths)]


def _pair(factory):
    return factory(incremental=True), factory(incremental=False)


def _feed(policy, jobs, events):
    for idx, rate, saturated, quantum in events:
        app_id = jobs[idx % len(jobs)].app_id
        if quantum:
            policy.on_quantum(app_id, rate, saturated=saturated)
        else:
            policy.on_sample(app_id, rate, saturated=saturated)


@given(_widths, _events, st.integers(min_value=4, max_value=16))
@settings(max_examples=200, deadline=None)
def test_latest_quantum_selects_identically(widths, events, n_cpus):
    jobs = _jobs([min(w, n_cpus) for w in widths])
    inc, ref = _pair(LatestQuantumPolicy)
    for pol in (inc, ref):
        _feed(pol, jobs, events)
    sel_inc = inc.select(jobs, n_cpus)
    sel_ref = ref.select(jobs, n_cpus)
    assert sel_inc.app_ids == sel_ref.app_ids
    assert sel_inc.abbw_trace == sel_ref.abbw_trace  # bitwise, not approx


@given(_widths, _events, st.integers(min_value=4, max_value=16))
@settings(max_examples=150, deadline=None)
def test_quanta_window_selects_identically_across_interleaving(widths, events, n_cpus):
    # Interleave selection rounds with estimator updates: the cache must
    # serve stale-free values after every invalidation.
    jobs = _jobs([min(w, n_cpus) for w in widths])
    inc, ref = _pair(QuantaWindowPolicy)
    half = len(events) // 2
    for chunk in (events[:half], events[half:]):
        for pol in (inc, ref):
            _feed(pol, jobs, chunk)
        sel_inc = inc.select(jobs, n_cpus)
        sel_ref = ref.select(jobs, n_cpus)
        assert sel_inc.app_ids == sel_ref.app_ids
        assert sel_inc.abbw_trace == sel_ref.abbw_trace


@given(_widths, _events, st.integers(min_value=4, max_value=12))
@settings(max_examples=100, deadline=None)
def test_ewma_with_forget_selects_identically(widths, events, n_cpus):
    jobs = _jobs([min(w, n_cpus) for w in widths])
    inc, ref = _pair(EwmaPolicy)
    for pol in (inc, ref):
        _feed(pol, jobs, events)
        pol.forget(jobs[0].app_id)  # disconnect must invalidate too
    sel_inc = inc.select(jobs, n_cpus)
    sel_ref = ref.select(jobs, n_cpus)
    assert sel_inc.app_ids == sel_ref.app_ids
    assert sel_inc.abbw_trace == sel_ref.abbw_trace


@given(_widths, st.integers(min_value=4, max_value=12), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_random_gang_preserves_rng_stream(widths, n_cpus, seed):
    # RandomGangPolicy overrides _candidate_score to consume the rng per
    # candidate; the incremental path must fall back to the scalar scan
    # so the stream advances exactly like the reference.
    jobs = _jobs([min(w, n_cpus) for w in widths])
    inc, ref = _pair(RandomGangPolicy)
    inc.bind_rng(np.random.default_rng(seed))
    ref.bind_rng(np.random.default_rng(seed))
    for _ in range(3):
        sel_inc = inc.select(jobs, n_cpus)
        sel_ref = ref.select(jobs, n_cpus)
        assert sel_inc.app_ids == sel_ref.app_ids


@given(_widths, _events, st.integers(min_value=4, max_value=12))
@settings(max_examples=100, deadline=None)
def test_custom_fitness_falls_back_and_matches(widths, events, n_cpus):
    def inverted(abbw_per_proc, bbw_per_thread):
        return -abs(abbw_per_proc - 2.0 * bbw_per_thread)

    jobs = _jobs([min(w, n_cpus) for w in widths])
    inc = LatestQuantumPolicy(fitness_fn=inverted, incremental=True)
    ref = LatestQuantumPolicy(fitness_fn=inverted, incremental=False)
    for pol in (inc, ref):
        _feed(pol, jobs, events)
    sel_inc = inc.select(jobs, n_cpus)
    sel_ref = ref.select(jobs, n_cpus)
    assert sel_inc.app_ids == sel_ref.app_ids
    assert sel_inc.abbw_trace == sel_ref.abbw_trace


class TestSelectionCounters:
    def test_second_select_reuses_cached_estimates(self):
        pol = LatestQuantumPolicy()
        jobs = _jobs([1, 1, 2, 2])
        for job in jobs:
            pol.on_quantum(job.app_id, 5.0)
        pol.select(jobs, 4)
        first = pol.selection_profile()
        assert first["sel_est_rescored"] == len(jobs)
        assert first["sel_est_reused"] == 0.0
        pol.select(jobs, 4)  # no estimator traffic in between
        second = pol.selection_profile()
        assert second["sel_est_rescored"] == len(jobs)
        assert second["sel_est_reused"] == len(jobs)
        assert second["selection_calls"] == 2.0

    def test_update_invalidates_only_touched_app(self):
        pol = LatestQuantumPolicy()
        jobs = _jobs([1, 1, 1, 1])
        pol.select(jobs, 4)
        pol.on_quantum(jobs[0].app_id, 9.0)
        pol.select(jobs, 4)
        profile = pol.selection_profile()
        # Second pass re-scores only the updated app.
        assert profile["sel_est_rescored"] == len(jobs) + 1
        assert profile["sel_est_reused"] == len(jobs) - 1

    def test_reference_mode_never_touches_cache_counters(self):
        pol = LatestQuantumPolicy(incremental=False)
        jobs = _jobs([1, 2, 1])
        pol.select(jobs, 4)
        profile = pol.selection_profile()
        assert profile["sel_est_rescored"] == 0.0
        assert profile["sel_est_reused"] == 0.0
        assert profile["selection_calls"] == 1.0
