"""Differential-oracle tests: the replay matches the live greedy policies."""

import numpy as np
import pytest

from repro.audit import reference_selection
from repro.core.policies import (
    EwmaPolicy,
    JobView,
    LatestQuantumPolicy,
    QuantaWindowPolicy,
    RandomGangPolicy,
)
from repro.core.policies_model import ModelDrivenPolicy


def _replay(policy, jobs, n_cpus):
    return reference_selection(
        jobs,
        n_cpus,
        policy.bus_capacity_txus,
        policy.effective_estimate,
        policy.fitness,
    )


class TestReferenceSelection:
    def test_head_runs_unconditionally(self):
        jobs = [JobView(1, 2), JobView(2, 2), JobView(3, 2)]
        picked = reference_selection(jobs, 4, 29.5, lambda a: 0.0, lambda x, y: 1.0)
        assert picked[0] == 1

    def test_oversized_head_skipped_for_first_fitting(self):
        # A job wider than the machine can never run; the first *fitting*
        # job in list order is the effective head.
        jobs = [JobView(1, 3), JobView(2, 2), JobView(3, 2)]
        picked = reference_selection(jobs, 4, 29.5, lambda a: 0.0, lambda x, y: 1.0)
        assert picked[0] == 1  # width 3 fits on 4 CPUs
        jobs = [JobView(1, 4), JobView(2, 2), JobView(3, 2)]
        picked = reference_selection(jobs, 3, 29.5, lambda a: 0.0, lambda x, y: 1.0)
        assert picked[0] == 2

    def test_ties_break_in_list_order(self):
        jobs = [JobView(1, 1), JobView(2, 1), JobView(3, 1), JobView(4, 1)]
        picked = reference_selection(jobs, 4, 29.5, lambda a: 0.0, lambda x, y: 1.0)
        assert picked == (1, 2, 3, 4)

    def test_fitness_drives_fill_order(self):
        # Two one-wide candidates after the head; the one whose rate is
        # closest to the available bandwidth per processor wins the slot.
        rates = {1: 0.0, 2: 9.0, 3: 5.0}
        jobs = [JobView(1, 2), JobView(2, 1), JobView(3, 1)]
        picked = reference_selection(
            jobs, 4, 10.0, rates.get, lambda abbw, bbw: -abs(abbw - bbw)
        )
        # After the head (est 0, width 2), abbw/proc = (10-0)/2 = 5.0:
        # job 3 (rate 5.0) scores better than job 2 (rate 9.0).
        assert picked == (1, 3, 2)

    def test_nothing_fits_stops(self):
        jobs = [JobView(1, 3), JobView(2, 3)]
        picked = reference_selection(jobs, 4, 29.5, lambda a: 0.0, lambda x, y: 1.0)
        assert picked == (1,)

    def test_empty_jobs(self):
        assert reference_selection([], 4, 29.5, lambda a: 0.0, lambda x, y: 1.0) == ()


class TestReplayMatchesPolicies:
    """The oracle agrees with every replayable policy on randomized inputs."""

    @pytest.mark.parametrize(
        "make_policy",
        [LatestQuantumPolicy, QuantaWindowPolicy, EwmaPolicy],
        ids=lambda p: p.__name__,
    )
    def test_randomized_agreement(self, make_policy):
        rng = np.random.default_rng(1234)
        for trial in range(200):
            policy = make_policy()
            assert policy.oracle_replayable
            n_jobs = int(rng.integers(1, 7))
            jobs = [
                JobView(app_id=i + 1, width=int(rng.integers(1, 5)))
                for i in range(n_jobs)
            ]
            # Feed each policy a few measured rates (some apps unmeasured).
            for job in jobs:
                for _ in range(int(rng.integers(0, 4))):
                    rate = float(rng.uniform(0.0, 12.0))
                    policy.on_sample(job.app_id, rate)
                    policy.on_quantum(job.app_id, rate)
            selection = policy.select(jobs, 4)
            assert selection.app_ids == _replay(policy, jobs, 4)

    def test_non_replayable_policies_flagged(self):
        assert RandomGangPolicy.oracle_replayable is False
        assert ModelDrivenPolicy.oracle_replayable is False

    def test_model_driven_legitimately_diverges(self):
        # The whole-set optimizer is *supposed* to disagree with the greedy
        # replay in some states; the flag is what keeps the audit honest.
        policy = ModelDrivenPolicy()
        policy.bind_rng(np.random.default_rng(0))
        jobs = [JobView(1, 2), JobView(2, 2), JobView(3, 2)]
        for app_id, rate in ((1, 11.0), (2, 11.0), (3, 0.5)):
            for _ in range(5):
                policy.on_sample(app_id, rate)
                policy.on_quantum(app_id, rate)
        selection = policy.select(jobs, 4)  # must not raise
        assert len(selection.app_ids) >= 1
