"""Self-tests for the invariant auditor.

Two families: a *clean* managed run in strict mode must evaluate every
check family at least once with zero violations, and each check must
demonstrably fire when a synthetic violation is injected (non-strict mode
records instead of raising, so we can inspect the report).
"""

import pickle

import numpy as np
import pytest

from repro.audit import AuditReport, InvariantAuditor, reference_selection
from repro.config import LinuxSchedConfig, MachineConfig, ManagerConfig
from repro.core.manager import CpuManager
from repro.core.policies import JobView, LatestQuantumPolicy, Selection
from repro.errors import AuditViolation
from repro.hw.machine import Machine
from repro.sched.linux import LinuxScheduler
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.base import Application, ApplicationSpec
from repro.workloads.patterns import ConstantPattern


def _spec(i, width=2, rate=5.0, work=500_000.0):
    return ApplicationSpec(
        name=f"app{i}",
        n_threads=width,
        work_per_thread_us=work,
        pattern=ConstantPattern(rate),
        footprint_lines=256.0,
    )


def _setup(n_apps=3, quantum=20_000.0, work=500_000.0, strict=False, capacity=None):
    """A managed 4-CPU system with the auditor threaded through."""
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=4), engine, TraceRecorder())
    apps = [
        Application.launch(_spec(i, work=work), machine, np.random.default_rng(i))
        for i in range(n_apps)
    ]
    kernel = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
    kernel.attach(machine, engine, np.random.default_rng(50))
    policy = LatestQuantumPolicy()
    cap = policy.bus_capacity_txus if capacity is None else capacity
    auditor = InvariantAuditor(machine, engine, bus_capacity_txus=cap, strict=strict)
    manager = CpuManager(ManagerConfig(quantum_us=quantum), policy, kernel, auditor=auditor)
    manager.attach(machine, engine, np.random.default_rng(51))
    manager.register_apps(apps)
    return engine, machine, apps, kernel, manager, auditor


def _run_to(engine, machine, kernel, manager, t):
    kernel.start()
    manager.start()
    engine.run_until(t, advancer=machine)


def _jobs(manager):
    machine = manager.machine
    return [
        JobView(
            app_id=d.app_id,
            width=sum(1 for t in d.tids if not machine.thread(t).finished),
            name=d.name.rsplit("#", 1)[0],
        )
        for d in manager.arena.connected()
    ]


def _violated(report, check):
    return any(f"'{check}'" in v for v in report.violations)


class TestCleanRun:
    """A healthy managed run passes every check family, repeatedly."""

    def test_every_check_fires_and_passes(self):
        engine, machine, apps, kernel, manager, auditor = _setup(
            n_apps=3, work=60_000.0, strict=True
        )
        kernel.start()
        manager.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        # Let the boundary chain reap the finished applications.
        engine.run_until(engine.now + 2 * manager.config.quantum_us, advancer=machine)
        report = auditor.finalize()
        assert report.ok
        for check in (
            "engine-accounting",
            "bus-capacity",
            "cpu-allocation",
            "allocation-intent",
            "signal-counters",
            "signal-departed",
            "selection-structure",
            "selection-oracle",
            "starvation-age",
            "accounting-totals",
        ):
            assert report.count(check) > 0, f"{check} never evaluated"
        assert report.total_checks == sum(n for _, n in report.checks)


class TestInjectedViolations:
    """Each check fires when the corresponding invariant is broken."""

    def test_bus_capacity(self):
        # An absurdly small configured capacity: any traffic violates it.
        engine, machine, apps, kernel, manager, auditor = _setup(capacity=1e-6)
        _run_to(engine, machine, kernel, manager, 30_000.0)
        report = auditor.report()
        assert _violated(report, "bus-capacity")

    def test_engine_accounting_clock_regression(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        auditor._last_clock = engine.now + 1.0  # pretend the clock went back
        auditor.check_engine()
        assert _violated(auditor.report(), "engine-accounting")

    def test_engine_accounting_ledger_mismatch(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        engine._events_fired += 1  # corrupt the ledger
        auditor.check_engine()
        engine._events_fired -= 1
        assert _violated(auditor.report(), "engine-accounting")

    def test_cpu_allocation_blocked_thread_on_cpu(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        tid = machine.running_tids()[0]
        # Flip the flag directly, bypassing set_blocked's CPU removal: the
        # machine now claims a blocked thread is executing.
        machine.thread(tid).blocked = True
        auditor.on_sample(manager)
        machine.thread(tid).blocked = False
        assert _violated(auditor.report(), "cpu-allocation")

    def test_allocation_intent_and_signal_counters(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        # Block a selected, running thread through the proper machine API
        # (it leaves its CPU) but *without* any signal: the realised state
        # now disagrees with the manager's intent, and the thread's blocked
        # flag disagrees with its signal counters.
        tid = machine.running_tids()[0]
        machine.set_blocked(tid, True)
        auditor.on_sample(manager)
        machine.set_blocked(tid, False)
        report = auditor.report()
        assert _violated(report, "allocation-intent")
        assert _violated(report, "signal-counters")

    def test_signal_departed(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        victim = apps[0]
        # Positive control: a delivery to a connected thread is fine.
        auditor.on_deliver(manager, victim.tids[0])
        assert auditor.report().ok
        manager.disconnect_app(victim.app_id)
        auditor.on_deliver(manager, victim.tids[0])
        assert _violated(auditor.report(), "signal-departed")

    def test_selection_structure_head_violation(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        jobs = _jobs(manager)
        bogus = Selection(app_ids=(jobs[1].app_id,), abbw_trace=())
        auditor.on_quantum(manager, jobs, bogus)
        assert _violated(auditor.report(), "selection-structure")

    def test_selection_structure_duplicate_violation(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        jobs = _jobs(manager)
        head = jobs[0].app_id
        bogus = Selection(app_ids=(head, head), abbw_trace=())
        auditor.on_quantum(manager, jobs, bogus)
        assert _violated(auditor.report(), "selection-structure")

    def test_selection_oracle(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        jobs = _jobs(manager)
        policy = manager.policy
        expected = reference_selection(
            jobs,
            machine.n_cpus,
            policy.bus_capacity_txus,
            policy.effective_estimate,
            policy.fitness,
        )
        # Structurally valid (head first, fits: two width-2 jobs on 4 CPUs)
        # but deliberately different from the greedy replay.
        others = [j.app_id for j in jobs[1:]]
        wrong = next(
            ids
            for a in others
            if (ids := (jobs[0].app_id, a)) != expected
        )
        auditor.on_quantum(manager, jobs, Selection(app_ids=wrong, abbw_trace=()))
        report = auditor.report()
        assert _violated(report, "selection-oracle")
        assert not _violated(report, "selection-structure")

    def test_starvation_age(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        # Skip the oracle (it would rightly object to this selection) and
        # keep electing only the head: with 3 co-resident applications the
        # others may legally wait 3 quanta; the 4th is a starvation breach.
        manager.policy.oracle_replayable = False
        auditor._wait.clear()  # discard ages accrued during the warmup run
        jobs = _jobs(manager)
        head_only = Selection(app_ids=(jobs[0].app_id,), abbw_trace=())
        for _ in range(3):
            auditor.on_quantum(manager, jobs, head_only)
        assert not _violated(auditor.report(), "starvation-age")
        auditor.on_quantum(manager, jobs, head_only)
        assert _violated(auditor.report(), "starvation-age")

    def test_accounting_totals(self):
        engine, machine, apps, kernel, manager, auditor = _setup(work=30_000.0)
        kernel.start()
        manager.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        thread = machine.threads()[0]
        thread.work_done = thread.work_total * 2.0  # impossible progress
        report = auditor.finalize()
        assert _violated(report, "accounting-totals")


class TestStrictMode:
    def test_first_violation_raises(self):
        engine, machine, apps, kernel, manager, auditor = _setup(
            strict=True, capacity=1e-6
        )
        with pytest.raises(AuditViolation) as exc:
            _run_to(engine, machine, kernel, manager, 30_000.0)
        assert exc.value.check == "bus-capacity"
        # The raising violation is also recorded in the report.
        assert _violated(auditor.report(), "bus-capacity")

    def test_non_strict_caps_recorded_violations(self):
        engine, machine, apps, kernel, manager, auditor = _setup()
        _run_to(engine, machine, kernel, manager, 10_000.0)
        for _ in range(300):
            auditor._violation("bus-capacity", synthetic=True)
        assert len(auditor.report().violations) == 100


class TestPeriodicAudit:
    """Manager-less runs get a self-rescheduling observer tick."""

    def test_kernel_only_run_audited(self):
        engine = Engine()
        machine = Machine(MachineConfig(n_cpus=4), engine, TraceRecorder())
        Application.launch(_spec(0, work=50_000.0), machine, np.random.default_rng(0))
        kernel = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
        kernel.attach(machine, engine, np.random.default_rng(1))
        auditor = InvariantAuditor(machine, engine, bus_capacity_txus=29.5)
        auditor.start_periodic(10_000.0)
        kernel.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        report = auditor.report()
        assert report.ok
        assert report.count("engine-accounting") > 0
        assert report.count("bus-capacity") > 0

    def test_bad_period_rejected(self):
        engine = Engine()
        machine = Machine(MachineConfig(n_cpus=4), engine, TraceRecorder())
        auditor = InvariantAuditor(machine, engine, bus_capacity_txus=29.5)
        with pytest.raises(ValueError):
            auditor.start_periodic(0.0)


class TestReportAndError:
    def test_report_properties(self):
        clean = AuditReport(checks=(("a", 2), ("b", 3)), violations=())
        assert clean.ok
        assert clean.total_checks == 5
        assert clean.count("a") == 2
        assert clean.count("missing") == 0
        dirty = AuditReport(checks=(("a", 1),), violations=("audit check 'a' failed",))
        assert not dirty.ok

    def test_violation_pickles(self):
        err = AuditViolation("bus-capacity", 123.5, {"total_txus": 31.0})
        clone = pickle.loads(pickle.dumps(err))
        assert clone.check == err.check
        assert clone.time_us == err.time_us
        assert clone.details == err.details
        assert str(clone) == str(err)

    def test_report_pickles(self):
        report = AuditReport(checks=(("a", 1),), violations=("v",))
        assert pickle.loads(pickle.dumps(report)) == report


class TestFaultInjectionAudit:
    """Audit behaviour under each fault injector (the robustness contract).

    With hardening *off*, each injector produces its expected violation
    class in non-strict mode; with hardening *on*, the degradation
    machinery keeps strict-mode runs clean (fault-adjusted checks).
    """

    def _fault_setup(
        self,
        plan,
        hardening,
        strict=False,
        n_apps=4,
        quantum=20_000.0,
        work=1e9,
        watchdog_quanta=2,
    ):
        from repro.faults import FaultInjector
        from repro.rng import RngRegistry

        engine = Engine()
        machine = Machine(MachineConfig(n_cpus=4), engine, TraceRecorder())
        apps = [
            Application.launch(_spec(i, work=work), machine, np.random.default_rng(i))
            for i in range(n_apps)
        ]
        kernel = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
        kernel.attach(machine, engine, np.random.default_rng(50))
        policy = LatestQuantumPolicy()
        auditor = InvariantAuditor(
            machine, engine, bus_capacity_txus=policy.bus_capacity_txus, strict=strict
        )
        injector = FaultInjector(plan, RngRegistry(17))
        manager = CpuManager(
            ManagerConfig(
                quantum_us=quantum,
                hardening=hardening,
                watchdog_quanta=watchdog_quanta,
            ),
            policy,
            kernel,
            auditor=auditor,
            faults=injector,
        )
        manager.attach(machine, engine, np.random.default_rng(51))
        manager.register_apps(apps)
        injector.schedule_app_faults(engine, machine, apps)
        kernel.start()
        manager.start()
        return engine, machine, apps, manager, auditor, injector

    def test_signal_loss_unhardened_violates_intent_or_counters(self):
        from repro.faults import FaultPlan

        engine, machine, apps, manager, auditor, injector = self._fault_setup(
            FaultPlan(signal_drop_prob=0.5), hardening=False
        )
        engine.run_until(600_000.0, advancer=machine)
        report = auditor.report()
        assert manager.signals.dropped > 0
        assert _violated(report, "allocation-intent") or _violated(
            report, "signal-counters"
        )

    def test_hang_unhardened_violates_progress_liveness(self):
        from repro.faults import FaultPlan

        engine, machine, apps, manager, auditor, injector = self._fault_setup(
            FaultPlan(hang_prob=1.0, hang_mean_time_us=5_000.0), hardening=False
        )
        engine.run_until(800_000.0, advancer=machine)
        report = auditor.report()
        assert injector.apps_hung == len(apps)
        assert injector.apps_quarantined == 0
        assert _violated(report, "progress-liveness")

    def test_hang_hardened_quarantine_keeps_strict_run_clean(self):
        from repro.faults import FaultPlan

        engine, machine, apps, manager, auditor, injector = self._fault_setup(
            FaultPlan(hang_prob=1.0, hang_mean_time_us=5_000.0),
            hardening=True,
            strict=True,
        )
        engine.run_until(800_000.0, advancer=machine)
        assert injector.apps_quarantined == len(apps)
        assert auditor.report().ok
        assert auditor.report().count("progress-liveness") > 0

    def test_crash_strict_clean_and_slot_released_immediately(self):
        from repro.faults import FaultPlan

        engine, machine, apps, manager, auditor, injector = self._fault_setup(
            FaultPlan(crash_prob=1.0, crash_mean_time_us=30_000.0),
            hardening=True,
            strict=True,
        )
        engine.run_until(600_000.0, advancer=machine)
        assert injector.apps_crashed == len(apps)
        # Immediate mid-quantum release: no crashed app lingers connected.
        assert manager.arena.connected() == []
        assert auditor.report().ok

    def test_pmc_noise_hardened_strict_clean(self):
        from repro.faults import FaultPlan

        engine, machine, apps, manager, auditor, injector = self._fault_setup(
            FaultPlan(
                pmc_jitter=0.3, pmc_drop_prob=0.1, pmc_wrap_prob=0.05, pmc_stale_prob=0.1
            ),
            hardening=True,
            strict=True,
        )
        engine.run_until(600_000.0, advancer=machine)
        assert injector.pmc_jittered + injector.pmc_dropped + injector.pmc_stale > 0
        report = auditor.report()
        assert report.ok
        assert report.count("selection-structure") > 0

    def test_signal_loss_hardened_relaxes_intent_and_retries(self):
        from repro.faults import FaultPlan

        engine, machine, apps, manager, auditor, injector = self._fault_setup(
            FaultPlan(signal_drop_prob=0.5), hardening=True
        )
        engine.run_until(600_000.0, advancer=machine)
        report = auditor.report()
        assert manager.signals.dropped > 0
        assert injector.signal_retries > 0
        # Relaxed while the verifier handles transients: the intent and
        # counter checks are suspended outright, never violated.
        assert report.count("allocation-intent") == 0
        assert report.count("signal-counters") == 0
        assert not report.violations

    def test_oracle_skipped_on_fallback_boundaries(self):
        from repro.faults import FaultPlan

        # All reads stale after the first: every late boundary degrades to
        # head-first, which the oracle replay must not second-guess.
        engine, machine, apps, manager, auditor, injector = self._fault_setup(
            FaultPlan(pmc_stale_prob=1.0), hardening=True, strict=True
        )
        engine.run_until(600_000.0, advancer=machine)
        assert injector.headfirst_fallbacks > 0
        report = auditor.report()
        assert report.ok
        assert report.count("selection-oracle") < report.count("selection-structure")
