"""Auditing must never perturb simulation physics.

The auditor is a read-only observer: with auditing on or off, and whether
runs execute serially or in forked workers, the simulated trajectory — and
therefore every compared ``RunResult`` field — must be bit-identical.
Policies are stateful (their estimators learn), so every spec gets a fresh
policy instance.
"""

import pytest

from repro.config import ManagerConfig
from repro.core.policies import LatestQuantumPolicy
from repro.dynamic import PoissonArrivals
from repro.dynamic.config import DynamicWorkload
from repro.dynamic.config import paper_mix
from repro.experiments.base import SimulationSpec, run_simulation
from repro.parallel import fork_available, run_many
from repro.workloads.microbench import bbma_spec, nbbma_spec


def _managed_spec(audit: bool, seed: int = 7) -> SimulationSpec:
    return SimulationSpec(
        targets=[bbma_spec(work_us=30_000.0), nbbma_spec(work_us=25_000.0)],
        background=[bbma_spec(work_us=500_000.0)],
        scheduler=LatestQuantumPolicy(),
        manager=ManagerConfig(quantum_us=5_000.0),
        seed=seed,
        audit=audit,
    )


def _dynamic_spec(audit: bool, seed: int = 11) -> SimulationSpec:
    return SimulationSpec(
        targets=[],
        scheduler=LatestQuantumPolicy(),
        manager=ManagerConfig(quantum_us=5_000.0),
        dynamic=DynamicWorkload(
            arrivals=PoissonArrivals(rate_per_s=50.0),
            mix=paper_mix(work_scale=0.02),
            n_jobs=5,
        ),
        seed=seed,
        audit=audit,
    )


class TestAuditOnOff:
    def test_static_managed_run_identical(self):
        plain = run_simulation(_managed_spec(audit=False))
        audited = run_simulation(_managed_spec(audit=True))
        assert plain == audited
        assert plain.makespan_us == audited.makespan_us
        assert plain.audit is None
        assert audited.audit is not None
        assert audited.audit.ok
        assert audited.audit.total_checks > 0

    def test_dynamic_run_identical(self):
        plain = run_simulation(_dynamic_spec(audit=False))
        audited = run_simulation(_dynamic_spec(audit=True))
        assert plain == audited
        assert plain.dynamic == audited.dynamic
        assert audited.audit is not None
        assert audited.audit.ok


class TestSerialParallel:
    def test_audited_results_survive_fork_boundary(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        specs = [_managed_spec(audit=True, seed=s) for s in (1, 2, 3)]
        serial = run_many([_managed_spec(audit=True, seed=s) for s in (1, 2, 3)], jobs=1)
        parallel = run_many(specs, jobs=2)
        assert serial == parallel
        for result in parallel:
            assert result.audit is not None
            assert result.audit.ok
            assert result.audit.total_checks > 0

    def test_audit_does_not_change_parallel_results(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        audited = run_many([_managed_spec(audit=True, seed=s) for s in (4, 5)], jobs=2)
        plain = run_many([_managed_spec(audit=False, seed=s) for s in (4, 5)], jobs=2)
        assert audited == plain
