"""Unit + property tests for the deterministic RNG registry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_name_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=50))
    def test_is_64_bit(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64


class TestRngRegistry:
    def test_same_name_same_object(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(7)
        r2 = RngRegistry(7)
        _ = r1.stream("first")  # created before "target" in r1 only
        a = r1.stream("target").random(5)
        b = r2.stream("target").random(5)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        reg = RngRegistry(3)
        a = reg.stream("a").random(5)
        b = reg.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_fork_is_deterministic(self):
        a = RngRegistry(5).fork("rep1").stream("x").random(3)
        b = RngRegistry(5).fork("rep1").stream("x").random(3)
        assert np.allclose(a, b)

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(5)
        child = parent.fork("rep1")
        assert not np.allclose(parent.stream("x").random(3), child.stream("x").random(3))

    def test_seed_property(self):
        assert RngRegistry(99).seed == 99

    def test_spawn_seed_matches_derivation(self):
        reg = RngRegistry(4)
        assert reg.spawn_seed("abc") == derive_seed(4, "abc")
