"""Unit tests for repro.units."""

import pytest

from repro import units


class TestTimeHelpers:
    def test_ms_converts_to_microseconds(self):
        assert units.ms(200) == 200_000.0

    def test_seconds_converts_to_microseconds(self):
        assert units.seconds(2) == 2_000_000.0

    def test_roundtrip_ms(self):
        assert units.to_ms(units.ms(123.5)) == pytest.approx(123.5)

    def test_roundtrip_seconds(self):
        assert units.to_seconds(units.seconds(0.75)) == pytest.approx(0.75)

    def test_constants_consistent(self):
        assert units.SEC == 1000 * units.MSEC
        assert units.MSEC == 1000 * units.USEC


class TestBandwidthConversion:
    def test_stream_bandwidth_matches_transactions(self):
        # The paper's 1797 MB/s and 29.5 tx/us describe the same measurement
        # at "approximately 64 bytes" per transaction; the pair implies
        # ~61 B, so the conversion agrees only to ~5 %.
        assert units.mbps_to_txus(units.STREAM_BANDWIDTH_MBPS) == pytest.approx(
            units.STREAM_CAPACITY_TXUS, rel=0.06
        )

    def test_roundtrip(self):
        assert units.txus_to_mbps(units.mbps_to_txus(1000.0)) == pytest.approx(1000.0)

    def test_l2_geometry(self):
        assert units.XEON_L2_LINES == 4096
        assert units.XEON_L2_BYTES == 256 * 1024

    def test_peak_exceeds_sustained(self):
        assert units.PEAK_BANDWIDTH_MBPS > units.STREAM_BANDWIDTH_MBPS


class TestClamp:
    def test_clamps_low(self):
        assert units.clamp(-1.0, 0.0, 1.0) == 0.0

    def test_clamps_high(self):
        assert units.clamp(2.0, 0.0, 1.0) == 1.0

    def test_identity_inside(self):
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            units.clamp(0.0, 1.0, 0.0)


class TestApproxEqual:
    def test_equal_values(self):
        assert units.approx_equal(1.0, 1.0)

    def test_relative_tolerance(self):
        assert units.approx_equal(1.0, 1.0 + 1e-12)

    def test_different_values(self):
        assert not units.approx_equal(1.0, 1.1)
