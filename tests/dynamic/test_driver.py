"""Open-system driver tests: admission, lifecycle, drops, watchdog."""

import pytest

from repro.core.policies import LatestQuantumPolicy
from repro.dynamic import (
    DynamicWorkload,
    PoissonArrivals,
    TraceArrivals,
    paper_mix,
)
from repro.errors import ConfigError
from repro.experiments.base import SimulationSpec, run_simulation, run_simulation_with_handle
from repro.metrics.queueing import summarize_queueing


def _spec(workload, scheduler="linux", seed=7, **kw):
    return SimulationSpec(targets=[], scheduler=scheduler, dynamic=workload, seed=seed, **kw)


def _workload(**overrides):
    defaults = dict(
        arrivals=PoissonArrivals(rate_per_s=3.0),
        mix=paper_mix(work_scale=0.05),
        n_jobs=8,
        max_in_service=3,
    )
    defaults.update(overrides)
    return DynamicWorkload(**defaults)


class TestLifecycle:
    def test_all_jobs_complete(self):
        result = run_simulation(_spec(_workload()))
        d = result.dynamic
        assert d is not None
        assert d.n_completed == 8
        assert d.dropped == 0

    def test_records_are_consistent(self):
        d = run_simulation(_spec(_workload())).dynamic
        app_ids = [j.app_id for j in d.jobs]
        assert len(set(app_ids)) == len(app_ids)
        for job in d.jobs:
            assert job.admit_us >= job.arrival_us
            assert job.completion_us > job.admit_us
            assert job.response_us > 0
            assert job.wait_us >= 0

    def test_under_manager_policy(self):
        result = run_simulation(_spec(_workload(), scheduler=LatestQuantumPolicy()))
        d = result.dynamic
        assert d.n_completed == 8
        assert d.starvation_violations == 0

    def test_manager_state_clean_after_churn(self):
        """Every dynamic app must be fully released from the manager."""
        spec = _spec(_workload(), scheduler=LatestQuantumPolicy())
        result, handle = run_simulation_with_handle(spec)
        manager = handle.manager
        assert manager.arena.connected() == []
        assert manager._boundary_samples == {}
        assert manager._selected == set()
        for app in handle.dynamic.launched_apps:
            # Descriptors survive disconnection (post-run inspection), but
            # leave the circular list.
            assert not manager.arena.descriptor(app.app_id).connected
            for tid in app.tids:
                assert manager.signals.received_counts(tid) == (0, 0)

    def test_dynamic_apps_in_accounting(self):
        result, handle = run_simulation_with_handle(_spec(_workload()))
        names = [a.name for a in result.apps]
        assert len(names) == len(handle.dynamic.launched_apps)
        assert result.dynamic.jobs[0].name in names


class TestAdmission:
    def test_max_in_service_respected(self):
        """At no instant are more than max_in_service jobs in service."""
        d = run_simulation(_spec(_workload(max_in_service=1, n_jobs=5))).dynamic
        intervals = sorted((j.admit_us, j.completion_us) for j in d.jobs)
        for (a1, c1), (a2, _) in zip(intervals, intervals[1:]):
            assert a2 >= c1  # serialized service

    def test_queue_builds_under_burst(self):
        burst = TraceArrivals(times_us=(100.0, 200.0, 300.0, 400.0))
        wl = _workload(arrivals=burst, n_jobs=4, max_in_service=1)
        d = run_simulation(_spec(wl)).dynamic
        assert d.max_queue_len == 3
        assert d.queue_len_time_avg > 0
        # FIFO: admission order follows arrival order.
        admits = [j.admit_us for j in d.jobs]
        assert admits == sorted(admits)

    def test_bounded_queue_drops(self):
        burst = TraceArrivals(times_us=(100.0, 200.0, 300.0, 400.0, 500.0))
        wl = _workload(arrivals=burst, n_jobs=5, max_in_service=1, queue_capacity=1)
        d = run_simulation(_spec(wl)).dynamic
        assert d.dropped == 3
        dropped = [j for j in d.jobs if j.dropped]
        assert len(dropped) == 3
        assert all(j.admit_us is None and j.completion_us is None for j in dropped)
        assert d.n_completed == 2

    def test_zero_capacity_queue(self):
        burst = TraceArrivals(times_us=(100.0, 200.0))
        wl = _workload(arrivals=burst, n_jobs=2, max_in_service=1, queue_capacity=0)
        d = run_simulation(_spec(wl)).dynamic
        assert d.dropped == 1
        assert d.n_completed == 1


class TestWatchdog:
    def test_no_starvation_in_strict_mode(self):
        """The paper's rotation guarantee: strict watchdog never trips."""
        wl = _workload(watchdog_strict=True, n_jobs=10, max_in_service=4)
        d = run_simulation(_spec(wl, scheduler=LatestQuantumPolicy())).dynamic
        assert d.starvation_violations == 0
        assert d.max_starvation_age_us <= d.starvation_bound_us

    def test_bound_recorded(self):
        d = run_simulation(_spec(_workload())).dynamic
        assert d.starvation_bound_us > 0
        assert d.utilization_time_avg >= 0
        assert 0.0 <= d.saturated_fraction <= 1.0


class TestSpecValidation:
    def test_static_schedulers_reject_dynamic(self):
        with pytest.raises(ConfigError):
            run_simulation(_spec(_workload(), scheduler="dedicated"))

    def test_empty_spec_still_rejected(self):
        with pytest.raises(ConfigError):
            run_simulation(SimulationSpec(targets=[]))

    def test_too_wide_template_rejected(self):
        from repro.config import MachineConfig

        with pytest.raises(ConfigError):
            run_simulation(_spec(_workload(), machine=MachineConfig(n_cpus=1)))


class TestStreamingStats:
    def test_streaming_attached_when_recording(self):
        wl = _workload()
        d = run_simulation(_spec(wl)).dynamic
        assert d.streaming is not None
        assert d.streaming.n_observed == d.n_completed
        assert d.streaming.n_scheduled == len(d.jobs)

    def test_records_disabled_end_to_end(self):
        wl = _workload(record_jobs=False)
        d = run_simulation(_spec(wl)).dynamic
        assert d.jobs == ()
        assert d.streaming is not None
        assert d.streaming.n_observed == 8
        s = summarize_queueing(
            d, warmup_jobs=wl.warmup_jobs(), tau_us=wl.slowdown_tau_us
        )
        assert s.n_completed == 8
        assert s.mean_response_us > 0
        assert s.response_p50_us is not None

    def test_streamed_summary_matches_records(self):
        """Same seed, records on vs off: the streamed summary reproduces
        the exact record-based one (buffered regime: bit-identical)."""
        on = run_simulation(_spec(_workload())).dynamic
        off = run_simulation(_spec(_workload(record_jobs=False))).dynamic
        wl = _workload()
        kw = dict(warmup_jobs=wl.warmup_jobs(), tau_us=wl.slowdown_tau_us)
        exact = summarize_queueing(on, **kw)
        streamed = summarize_queueing(off, **kw)
        assert streamed.mean_response_us == exact.mean_response_us
        assert streamed.response_ci_us == exact.response_ci_us
        assert streamed.mean_slowdown == exact.mean_slowdown
        assert streamed.throughput_jobs_per_s == exact.throughput_jobs_per_s
        assert streamed.n_completed == exact.n_completed

    def test_record_toggle_does_not_perturb_run(self):
        """record_jobs must not change the simulation itself."""
        on = run_simulation(_spec(_workload())).dynamic
        off = run_simulation(_spec(_workload(record_jobs=False))).dynamic
        assert on.streaming == off.streaming
        assert on.horizon_us == off.horizon_us
        assert on.queue_len_time_avg == off.queue_len_time_avg
