"""Validation tests for the dynamic-workload configuration objects."""

import pytest

from repro.dynamic import (
    BurstyMix,
    DynamicWorkload,
    HotspotMix,
    JobMix,
    PoissonArrivals,
    SequentialMix,
    ZipfianMix,
    paper_mix,
)
from repro.errors import ConfigError
from repro.rng import RngRegistry
from repro.workloads.suites import paper_app


def _workload(**overrides):
    defaults = dict(
        arrivals=PoissonArrivals(rate_per_s=1.0),
        mix=paper_mix(work_scale=0.1),
    )
    defaults.update(overrides)
    return DynamicWorkload(**defaults)


class TestJobMix:
    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            JobMix(entries=())

    def test_rejects_bad_weight(self):
        with pytest.raises(ConfigError):
            JobMix(entries=((paper_app("CG"), 0.0),))

    def test_rejects_non_spec(self):
        with pytest.raises(ConfigError):
            JobMix(entries=(("CG", 1.0),))

    def test_sampling_is_weight_proportional(self):
        mix = JobMix(entries=((paper_app("CG"), 3.0), (paper_app("SP"), 1.0)))
        rng = RngRegistry(3).stream("dynamic.mix")
        names = [mix.sample(rng).name for _ in range(4000)]
        assert names.count("CG") / len(names) == pytest.approx(0.75, abs=0.05)

    def test_sampling_deterministic(self):
        mix = paper_mix()
        a = [mix.sample(RngRegistry(5).stream("dynamic.mix")) for _ in range(1)]
        b = [mix.sample(RngRegistry(5).stream("dynamic.mix")) for _ in range(1)]
        assert [s.name for s in a] == [s.name for s in b]

    def test_mean_nominal_service(self):
        mix = JobMix(entries=((paper_app("CG"), 1.0), (paper_app("SP"), 1.0)))
        expected = (
            paper_app("CG").work_per_thread_us + paper_app("SP").work_per_thread_us
        ) / 2
        assert mix.mean_nominal_service_us() == pytest.approx(expected)

    def test_paper_mix_rejects_empty(self):
        with pytest.raises(ConfigError):
            paper_mix(names=[])


class TestDynamicWorkloadValidation:
    def test_defaults_valid(self):
        wl = _workload()
        assert wl.n_jobs == 30
        assert wl.queue_capacity is None

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(n_jobs=0),
            dict(max_in_service=0),
            dict(queue_capacity=-1),
            dict(poll_period_us=0.0),
            dict(watchdog_factor=0.0),
            dict(warmup_frac=1.0),
            dict(warmup_frac=-0.1),
            dict(slowdown_tau_us=-1.0),
            dict(saturation_threshold=0.0),
            dict(saturation_threshold=1.5),
        ],
        ids=lambda o: next(iter(o.items()))[0] + "=" + str(next(iter(o.items()))[1]),
    )
    def test_bad_knobs_raise_config_error(self, overrides):
        with pytest.raises(ConfigError):
            _workload(**overrides)

    def test_rejects_wrong_types(self):
        with pytest.raises(ConfigError):
            DynamicWorkload(arrivals="poisson", mix=paper_mix())
        with pytest.raises(ConfigError):
            DynamicWorkload(arrivals=PoissonArrivals(rate_per_s=1.0), mix="mix")

    def test_warmup_jobs(self):
        assert _workload(n_jobs=30, warmup_frac=0.1).warmup_jobs() == 3
        assert _workload(n_jobs=5, warmup_frac=0.0).warmup_jobs() == 0

    def test_starvation_bound_scales_with_load(self):
        wl = _workload(watchdog_factor=4.0)
        assert wl.starvation_bound_us(200_000.0, 3) == pytest.approx(2_400_000.0)
        # At least one rotation slot even with nothing co-resident.
        assert wl.starvation_bound_us(200_000.0, 0) == pytest.approx(800_000.0)


class TestMixFamilies:
    def _entries(self, *names_weights):
        return tuple((paper_app(n), w) for n, w in names_weights)

    def test_zipfian_skews_toward_head(self):
        entries = self._entries(("CG", 1.0), ("SP", 1.0), ("MG", 1.0))
        mix = ZipfianMix(entries=entries, exponent=2.0)
        rng = RngRegistry(3).stream("dynamic.mix")
        names = [mix.sample(rng).name for _ in range(6000)]
        # Weights 1, 1/4, 1/9 -> head share 36/49.
        assert names.count("CG") / len(names) == pytest.approx(36 / 49, abs=0.03)
        assert names.count("CG") > names.count("SP") > names.count("MG")

    def test_zipfian_zero_exponent_is_uniform(self):
        entries = self._entries(("CG", 1.0), ("SP", 1.0))
        mix = ZipfianMix(entries=entries, exponent=0.0)
        rng = RngRegistry(4).stream("dynamic.mix")
        names = [mix.sample(rng).name for _ in range(4000)]
        assert names.count("CG") / len(names) == pytest.approx(0.5, abs=0.05)

    def test_zipfian_validation(self):
        entries = self._entries(("CG", 1.0))
        with pytest.raises(ConfigError):
            ZipfianMix(entries=entries, exponent=-1.0)
        with pytest.raises(ConfigError):
            ZipfianMix(entries=entries, exponent=float("inf"))

    def test_hotspot_concentrates_on_hot_index(self):
        entries = self._entries(("CG", 1.0), ("SP", 1.0), ("MG", 1.0))
        mix = HotspotMix(entries=entries, hot_fraction=0.8, hot_index=1)
        rng = RngRegistry(5).stream("dynamic.mix")
        names = [mix.sample(rng).name for _ in range(6000)]
        assert names.count("SP") / len(names) == pytest.approx(0.8, abs=0.03)
        assert names.count("CG") / len(names) == pytest.approx(0.1, abs=0.03)

    def test_hotspot_validation(self):
        entries = self._entries(("CG", 1.0), ("SP", 1.0))
        with pytest.raises(ConfigError):
            HotspotMix(entries=entries, hot_fraction=1.0)
        with pytest.raises(ConfigError):
            HotspotMix(entries=entries, hot_fraction=0.0)
        with pytest.raises(ConfigError):
            HotspotMix(entries=entries, hot_index=2)

    def test_sequential_cycles_deterministically(self):
        entries = self._entries(("CG", 1.0), ("SP", 1.0))
        mix = SequentialMix(entries=entries, run_length=3)
        rng = RngRegistry(6).stream("dynamic.mix")
        names = [s.name for s in mix.sample_many(rng, 12)]
        assert names == ["CG"] * 3 + ["SP"] * 3 + ["CG"] * 3 + ["SP"] * 3

    def test_sequential_consumes_no_rng(self):
        entries = self._entries(("CG", 1.0), ("SP", 1.0))
        mix = SequentialMix(entries=entries, run_length=2)
        a = [s.name for s in mix.sample_many(RngRegistry(1).stream("dynamic.mix"), 8)]
        b = [s.name for s in mix.sample_many(RngRegistry(2).stream("dynamic.mix"), 8)]
        assert a == b

    def test_sequential_validation(self):
        with pytest.raises(ConfigError):
            SequentialMix(entries=self._entries(("CG", 1.0)), run_length=0)

    def test_bursty_produces_runs(self):
        entries = self._entries(("CG", 1.0), ("SP", 1.0))
        mix = BurstyMix(entries=entries, mean_run_length=8.0)
        rng = RngRegistry(7).stream("dynamic.mix")
        names = [s.name for s in mix.sample_many(rng, 2000)]
        switches = sum(1 for a, b in zip(names, names[1:]) if a != b)
        # Independent draws would switch ~50% of the time; runs of mean
        # length 8 switch ~1/8 of the time.
        assert switches / len(names) < 0.3

    def test_bursty_deterministic_and_sized(self):
        entries = self._entries(("CG", 1.0), ("SP", 2.0))
        mix = BurstyMix(entries=entries, mean_run_length=3.0)
        a = mix.sample_many(RngRegistry(9).stream("dynamic.mix"), 57)
        b = mix.sample_many(RngRegistry(9).stream("dynamic.mix"), 57)
        assert len(a) == 57
        assert [s.name for s in a] == [s.name for s in b]

    def test_bursty_validation(self):
        with pytest.raises(ConfigError):
            BurstyMix(entries=self._entries(("CG", 1.0)), mean_run_length=0.5)

    def test_sample_many_base_matches_sample_loop(self):
        mix = JobMix(entries=self._entries(("CG", 3.0), ("SP", 1.0)))
        many = mix.sample_many(RngRegistry(11).stream("dynamic.mix"), 25)
        rng = RngRegistry(11).stream("dynamic.mix")
        loop = [mix.sample(rng) for _ in range(25)]
        assert [s.name for s in many] == [s.name for s in loop]

    def test_families_keep_mean_service_weighting(self):
        entries = self._entries(("CG", 1.0), ("SP", 1.0))
        plain = JobMix(entries=entries)
        zipf = ZipfianMix(entries=entries, exponent=1.0)
        # Zipfian reweights (1, 1/2): the effective mean shifts toward CG.
        cg = paper_app("CG").work_per_thread_us
        sp = paper_app("SP").work_per_thread_us
        assert plain.mean_nominal_service_us() == pytest.approx((cg + sp) / 2)
        assert zipf.mean_nominal_service_us() == pytest.approx((2 * cg + sp) / 3)
