"""Validation tests for the dynamic-workload configuration objects."""

import pytest

from repro.dynamic import DynamicWorkload, JobMix, PoissonArrivals, paper_mix
from repro.errors import ConfigError
from repro.rng import RngRegistry
from repro.workloads.suites import paper_app


def _workload(**overrides):
    defaults = dict(
        arrivals=PoissonArrivals(rate_per_s=1.0),
        mix=paper_mix(work_scale=0.1),
    )
    defaults.update(overrides)
    return DynamicWorkload(**defaults)


class TestJobMix:
    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            JobMix(entries=())

    def test_rejects_bad_weight(self):
        with pytest.raises(ConfigError):
            JobMix(entries=((paper_app("CG"), 0.0),))

    def test_rejects_non_spec(self):
        with pytest.raises(ConfigError):
            JobMix(entries=(("CG", 1.0),))

    def test_sampling_is_weight_proportional(self):
        mix = JobMix(entries=((paper_app("CG"), 3.0), (paper_app("SP"), 1.0)))
        rng = RngRegistry(3).stream("dynamic.mix")
        names = [mix.sample(rng).name for _ in range(4000)]
        assert names.count("CG") / len(names) == pytest.approx(0.75, abs=0.05)

    def test_sampling_deterministic(self):
        mix = paper_mix()
        a = [mix.sample(RngRegistry(5).stream("dynamic.mix")) for _ in range(1)]
        b = [mix.sample(RngRegistry(5).stream("dynamic.mix")) for _ in range(1)]
        assert [s.name for s in a] == [s.name for s in b]

    def test_mean_nominal_service(self):
        mix = JobMix(entries=((paper_app("CG"), 1.0), (paper_app("SP"), 1.0)))
        expected = (
            paper_app("CG").work_per_thread_us + paper_app("SP").work_per_thread_us
        ) / 2
        assert mix.mean_nominal_service_us() == pytest.approx(expected)

    def test_paper_mix_rejects_empty(self):
        with pytest.raises(ConfigError):
            paper_mix(names=[])


class TestDynamicWorkloadValidation:
    def test_defaults_valid(self):
        wl = _workload()
        assert wl.n_jobs == 30
        assert wl.queue_capacity is None

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(n_jobs=0),
            dict(max_in_service=0),
            dict(queue_capacity=-1),
            dict(poll_period_us=0.0),
            dict(watchdog_factor=0.0),
            dict(warmup_frac=1.0),
            dict(warmup_frac=-0.1),
            dict(slowdown_tau_us=-1.0),
            dict(saturation_threshold=0.0),
            dict(saturation_threshold=1.5),
        ],
        ids=lambda o: next(iter(o.items()))[0] + "=" + str(next(iter(o.items()))[1]),
    )
    def test_bad_knobs_raise_config_error(self, overrides):
        with pytest.raises(ConfigError):
            _workload(**overrides)

    def test_rejects_wrong_types(self):
        with pytest.raises(ConfigError):
            DynamicWorkload(arrivals="poisson", mix=paper_mix())
        with pytest.raises(ConfigError):
            DynamicWorkload(arrivals=PoissonArrivals(rate_per_s=1.0), mix="mix")

    def test_warmup_jobs(self):
        assert _workload(n_jobs=30, warmup_frac=0.1).warmup_jobs() == 3
        assert _workload(n_jobs=5, warmup_frac=0.0).warmup_jobs() == 0

    def test_starvation_bound_scales_with_load(self):
        wl = _workload(watchdog_factor=4.0)
        assert wl.starvation_bound_us(200_000.0, 3) == pytest.approx(2_400_000.0)
        # At least one rotation slot even with nothing co-resident.
        assert wl.starvation_bound_us(200_000.0, 0) == pytest.approx(800_000.0)
