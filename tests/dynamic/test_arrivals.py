"""Arrival-process tests: determinism, distributions, trace round-trips."""

import numpy as np
import pytest

from repro.dynamic import MMPPBurstyArrivals, PoissonArrivals, TraceArrivals
from repro.errors import ConfigError
from repro.rng import RngRegistry

PROCESSES = [
    PoissonArrivals(rate_per_s=3.0),
    MMPPBurstyArrivals(rate_low_per_s=1.0, rate_high_per_s=8.0),
    TraceArrivals(times_us=tuple(float(t) for t in range(0, 5_000_000, 250_000))),
]


class TestDeterminism:
    @pytest.mark.parametrize("process", PROCESSES, ids=lambda p: type(p).__name__)
    def test_fixed_seed_bit_identical(self, process):
        """Same seed + same stream name → bit-identical schedules.

        This is the property that makes serial and run_many execution
        agree: every worker reconstructs the registry from the spec seed.
        """
        a = process.sample_times(RngRegistry(7).stream("dynamic.arrivals"), 20)
        b = process.sample_times(RngRegistry(7).stream("dynamic.arrivals"), 20)
        assert a == b

    @pytest.mark.parametrize("process", PROCESSES[:2], ids=lambda p: type(p).__name__)
    def test_different_seeds_differ(self, process):
        a = process.sample_times(RngRegistry(7).stream("dynamic.arrivals"), 20)
        b = process.sample_times(RngRegistry(8).stream("dynamic.arrivals"), 20)
        assert a != b

    @pytest.mark.parametrize("process", PROCESSES, ids=lambda p: type(p).__name__)
    @pytest.mark.parametrize("seed", [1, 2, 3, 17])
    def test_strictly_increasing_and_nonnegative(self, process, seed):
        times = process.sample_times(np.random.default_rng(seed), 50)
        assert all(t >= 0 for t in times)
        assert all(b > a for a, b in zip(times, times[1:]))


class TestPoisson:
    def test_mean_gap_matches_rate(self):
        proc = PoissonArrivals(rate_per_s=5.0)
        times = proc.sample_times(np.random.default_rng(0), 4000)
        mean_gap_us = times[-1] / len(times)
        assert mean_gap_us == pytest.approx(1e6 / 5.0, rel=0.1)
        assert proc.mean_rate_per_s == 5.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(rate_per_s=0.0)

    def test_rejects_zero_jobs(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(rate_per_s=1.0).sample_times(np.random.default_rng(0), 0)


class TestMMPP:
    def test_mean_rate_is_dwell_weighted(self):
        proc = MMPPBurstyArrivals(
            rate_low_per_s=1.0, rate_high_per_s=9.0, mean_low_s=3.0, mean_high_s=1.0
        )
        assert proc.mean_rate_per_s == pytest.approx((1.0 * 3 + 9.0 * 1) / 4)

    def test_long_run_rate_converges(self):
        proc = MMPPBurstyArrivals(rate_low_per_s=2.0, rate_high_per_s=8.0)
        times = proc.sample_times(np.random.default_rng(1), 6000)
        empirical = len(times) / (times[-1] / 1e6)
        assert empirical == pytest.approx(proc.mean_rate_per_s, rel=0.15)

    def test_burstier_than_poisson(self):
        """The squared coefficient of variation of gaps must exceed 1."""
        proc = MMPPBurstyArrivals(rate_low_per_s=0.5, rate_high_per_s=20.0)
        times = np.asarray(proc.sample_times(np.random.default_rng(2), 6000))
        gaps = np.diff(times)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.2

    def test_validation(self):
        with pytest.raises(ConfigError):
            MMPPBurstyArrivals(rate_low_per_s=5.0, rate_high_per_s=1.0)
        with pytest.raises(ConfigError):
            MMPPBurstyArrivals(rate_low_per_s=1.0, rate_high_per_s=2.0, mean_low_s=0.0)


class TestTrace:
    def test_replays_exactly(self):
        trace = TraceArrivals(times_us=(10.0, 20.5, 99.0))
        assert trace.sample_times(np.random.default_rng(0), 3) == [10.0, 20.5, 99.0]

    def test_shorter_trace_bounds_stream(self):
        trace = TraceArrivals(times_us=(10.0, 20.0))
        assert len(trace.sample_times(np.random.default_rng(0), 50)) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            TraceArrivals(times_us=())
        with pytest.raises(ConfigError):
            TraceArrivals(times_us=(5.0, 5.0))
        with pytest.raises(ConfigError):
            TraceArrivals(times_us=(-1.0, 5.0))

    @pytest.mark.parametrize("seed", range(5))
    def test_json_round_trip_lossless(self, tmp_path, seed):
        """Any sampled schedule survives the JSON format bit-for-bit."""
        times = PoissonArrivals(rate_per_s=2.0).sample_times(
            np.random.default_rng(seed), 40
        )
        trace = TraceArrivals(times_us=tuple(times))
        path = trace.to_json(str(tmp_path / f"trace{seed}.json"))
        assert TraceArrivals.from_json(path) == trace

    @pytest.mark.parametrize("seed", range(5))
    def test_csv_round_trip_lossless(self, tmp_path, seed):
        times = MMPPBurstyArrivals(rate_low_per_s=1.0, rate_high_per_s=7.0).sample_times(
            np.random.default_rng(seed), 40
        )
        trace = TraceArrivals(times_us=tuple(times))
        path = trace.to_csv(str(tmp_path / f"trace{seed}.csv"))
        assert TraceArrivals.from_csv(path) == trace

    def test_bad_files_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"nope": []}')
        with pytest.raises(ConfigError):
            TraceArrivals.from_json(str(p))
        q = tmp_path / "bad.csv"
        q.write_text("wrong_header\n1.0\n")
        with pytest.raises(ConfigError):
            TraceArrivals.from_csv(str(q))
        r = tmp_path / "badval.csv"
        r.write_text("arrival_us\nnot-a-number\n")
        with pytest.raises(ConfigError):
            TraceArrivals.from_csv(str(r))

    def test_mean_rate(self):
        trace = TraceArrivals(times_us=(0.0, 1e6, 2e6))
        assert trace.mean_rate_per_s == pytest.approx(1.0)
