"""Arrival-process tests: determinism, distributions, trace round-trips."""

import numpy as np
import pytest

from repro.dynamic import (
    DiurnalShape,
    FlashCrowdShape,
    MMPPBurstyArrivals,
    PoissonArrivals,
    ShapedArrivals,
    TraceArrivals,
)
from repro.errors import ConfigError
from repro.rng import RngRegistry

PROCESSES = [
    PoissonArrivals(rate_per_s=3.0),
    MMPPBurstyArrivals(rate_low_per_s=1.0, rate_high_per_s=8.0),
    TraceArrivals(times_us=tuple(float(t) for t in range(0, 5_000_000, 250_000))),
]


class TestDeterminism:
    @pytest.mark.parametrize("process", PROCESSES, ids=lambda p: type(p).__name__)
    def test_fixed_seed_bit_identical(self, process):
        """Same seed + same stream name → bit-identical schedules.

        This is the property that makes serial and run_many execution
        agree: every worker reconstructs the registry from the spec seed.
        """
        a = process.sample_times(RngRegistry(7).stream("dynamic.arrivals"), 20)
        b = process.sample_times(RngRegistry(7).stream("dynamic.arrivals"), 20)
        assert a == b

    @pytest.mark.parametrize("process", PROCESSES[:2], ids=lambda p: type(p).__name__)
    def test_different_seeds_differ(self, process):
        a = process.sample_times(RngRegistry(7).stream("dynamic.arrivals"), 20)
        b = process.sample_times(RngRegistry(8).stream("dynamic.arrivals"), 20)
        assert a != b

    @pytest.mark.parametrize("process", PROCESSES, ids=lambda p: type(p).__name__)
    @pytest.mark.parametrize("seed", [1, 2, 3, 17])
    def test_strictly_increasing_and_nonnegative(self, process, seed):
        times = process.sample_times(np.random.default_rng(seed), 50)
        assert all(t >= 0 for t in times)
        assert all(b > a for a, b in zip(times, times[1:]))


class TestPoisson:
    def test_mean_gap_matches_rate(self):
        proc = PoissonArrivals(rate_per_s=5.0)
        times = proc.sample_times(np.random.default_rng(0), 4000)
        mean_gap_us = times[-1] / len(times)
        assert mean_gap_us == pytest.approx(1e6 / 5.0, rel=0.1)
        assert proc.mean_rate_per_s == 5.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(rate_per_s=0.0)

    def test_rejects_zero_jobs(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(rate_per_s=1.0).sample_times(np.random.default_rng(0), 0)


class TestMMPP:
    def test_mean_rate_is_dwell_weighted(self):
        proc = MMPPBurstyArrivals(
            rate_low_per_s=1.0, rate_high_per_s=9.0, mean_low_s=3.0, mean_high_s=1.0
        )
        assert proc.mean_rate_per_s == pytest.approx((1.0 * 3 + 9.0 * 1) / 4)

    def test_long_run_rate_converges(self):
        proc = MMPPBurstyArrivals(rate_low_per_s=2.0, rate_high_per_s=8.0)
        times = proc.sample_times(np.random.default_rng(1), 6000)
        empirical = len(times) / (times[-1] / 1e6)
        assert empirical == pytest.approx(proc.mean_rate_per_s, rel=0.15)

    def test_burstier_than_poisson(self):
        """The squared coefficient of variation of gaps must exceed 1."""
        proc = MMPPBurstyArrivals(rate_low_per_s=0.5, rate_high_per_s=20.0)
        times = np.asarray(proc.sample_times(np.random.default_rng(2), 6000))
        gaps = np.diff(times)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.2

    def test_validation(self):
        with pytest.raises(ConfigError):
            MMPPBurstyArrivals(rate_low_per_s=5.0, rate_high_per_s=1.0)
        with pytest.raises(ConfigError):
            MMPPBurstyArrivals(rate_low_per_s=1.0, rate_high_per_s=2.0, mean_low_s=0.0)


class TestTrace:
    def test_replays_exactly(self):
        trace = TraceArrivals(times_us=(10.0, 20.5, 99.0))
        assert trace.sample_times(np.random.default_rng(0), 3) == [10.0, 20.5, 99.0]

    def test_shorter_trace_bounds_stream(self):
        trace = TraceArrivals(times_us=(10.0, 20.0))
        assert len(trace.sample_times(np.random.default_rng(0), 50)) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            TraceArrivals(times_us=())
        with pytest.raises(ConfigError):
            TraceArrivals(times_us=(5.0, 5.0))
        with pytest.raises(ConfigError):
            TraceArrivals(times_us=(-1.0, 5.0))

    @pytest.mark.parametrize("seed", range(5))
    def test_json_round_trip_lossless(self, tmp_path, seed):
        """Any sampled schedule survives the JSON format bit-for-bit."""
        times = PoissonArrivals(rate_per_s=2.0).sample_times(
            np.random.default_rng(seed), 40
        )
        trace = TraceArrivals(times_us=tuple(times))
        path = trace.to_json(str(tmp_path / f"trace{seed}.json"))
        assert TraceArrivals.from_json(path) == trace

    @pytest.mark.parametrize("seed", range(5))
    def test_csv_round_trip_lossless(self, tmp_path, seed):
        times = MMPPBurstyArrivals(rate_low_per_s=1.0, rate_high_per_s=7.0).sample_times(
            np.random.default_rng(seed), 40
        )
        trace = TraceArrivals(times_us=tuple(times))
        path = trace.to_csv(str(tmp_path / f"trace{seed}.csv"))
        assert TraceArrivals.from_csv(path) == trace

    def test_bad_files_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"nope": []}')
        with pytest.raises(ConfigError):
            TraceArrivals.from_json(str(p))
        q = tmp_path / "bad.csv"
        q.write_text("wrong_header\n1.0\n")
        with pytest.raises(ConfigError):
            TraceArrivals.from_csv(str(q))
        r = tmp_path / "badval.csv"
        r.write_text("arrival_us\nnot-a-number\n")
        with pytest.raises(ConfigError):
            TraceArrivals.from_csv(str(r))

    def test_mean_rate(self):
        trace = TraceArrivals(times_us=(0.0, 1e6, 2e6))
        assert trace.mean_rate_per_s == pytest.approx(1.0)


class TestTraceFiniteness:
    """Regression: NaN/inf timestamps used to sail through validation
    (nan fails every < comparison, inf passes the monotonicity check)."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_direct_construction_rejected(self, bad):
        with pytest.raises(ConfigError, match="finite.*index 1"):
            TraceArrivals(times_us=(10.0, bad, 30.0))

    def test_json_loader_rejected(self, tmp_path):
        p = tmp_path / "nan.json"
        p.write_text('{"times_us": [10.0, NaN, 30.0]}')
        with pytest.raises(ConfigError, match="finite"):
            TraceArrivals.from_json(str(p))
        q = tmp_path / "inf.json"
        q.write_text('{"times_us": [10.0, Infinity]}')
        with pytest.raises(ConfigError, match="finite"):
            TraceArrivals.from_json(str(q))

    def test_csv_loader_rejected(self, tmp_path):
        p = tmp_path / "nan.csv"
        p.write_text("arrival_us\n10.0\nnan\n30.0\n")
        with pytest.raises(ConfigError, match="finite"):
            TraceArrivals.from_csv(str(p))
        q = tmp_path / "inf.csv"
        q.write_text("arrival_us\n10.0\ninf\n")
        with pytest.raises(ConfigError, match="finite"):
            TraceArrivals.from_csv(str(q))


class TestRateShapes:
    def test_diurnal_factor_and_mean(self):
        shape = DiurnalShape(period_s=60.0, amplitude=0.5)
        assert shape.factor(0.0) == pytest.approx(1.0)
        assert shape.factor(15e6) == pytest.approx(1.5)  # quarter period: peak
        assert shape.factor(45e6) == pytest.approx(0.5)  # trough
        assert shape.mean_factor == pytest.approx(1.0)
        assert shape.min_factor == pytest.approx(0.5)
        assert shape.max_factor == pytest.approx(1.5)

    def test_diurnal_integral_matches_numeric(self):
        shape = DiurnalShape(period_s=10.0, amplitude=0.8, phase=0.25)
        t = 37.3e6
        steps = 200_000
        dt = t / steps
        numeric = sum(shape.factor((i + 0.5) * dt) for i in range(steps)) * dt
        assert shape.integral_us(t) == pytest.approx(numeric, rel=1e-6)

    def test_flash_factor_step(self):
        shape = FlashCrowdShape(at_s=1.0, duration_s=1.0, magnitude=3.0)
        assert shape.factor(0.5e6) == 1.0
        assert shape.factor(1.5e6) == 4.0
        assert shape.factor(2.5e6) == 1.0

    def test_flash_integral_piecewise(self):
        shape = FlashCrowdShape(at_s=1.0, duration_s=2.0, magnitude=1.0)
        assert shape.integral_us(0.5e6) == pytest.approx(0.5e6)
        assert shape.integral_us(2.0e6) == pytest.approx(1e6 + 2 * 1e6)
        assert shape.integral_us(5.0e6) == pytest.approx(5e6 + 2e6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiurnalShape(period_s=0.0)
        with pytest.raises(ConfigError):
            DiurnalShape(amplitude=1.0)
        with pytest.raises(ConfigError):
            FlashCrowdShape(at_s=-1.0, duration_s=1.0, magnitude=2.0)
        with pytest.raises(ConfigError):
            FlashCrowdShape(at_s=0.0, duration_s=0.0, magnitude=2.0)
        with pytest.raises(ConfigError):
            FlashCrowdShape(at_s=0.0, duration_s=1.0, magnitude=0.0)


class TestShapedArrivals:
    SHAPED = [
        ShapedArrivals(
            base=PoissonArrivals(rate_per_s=3.0),
            shape=DiurnalShape(period_s=5.0, amplitude=0.6),
        ),
        ShapedArrivals(
            base=MMPPBurstyArrivals(rate_low_per_s=1.0, rate_high_per_s=8.0),
            shape=FlashCrowdShape(at_s=2.0, duration_s=2.0, magnitude=4.0),
        ),
    ]

    @pytest.mark.parametrize("process", SHAPED, ids=lambda p: type(p.shape).__name__)
    def test_deterministic(self, process):
        a = process.sample_times(RngRegistry(7).stream("dynamic.arrivals"), 40)
        b = process.sample_times(RngRegistry(7).stream("dynamic.arrivals"), 40)
        assert a == b

    @pytest.mark.parametrize("process", SHAPED, ids=lambda p: type(p.shape).__name__)
    @pytest.mark.parametrize("seed", [1, 2, 17])
    def test_strictly_increasing_and_nonnegative(self, process, seed):
        times = process.sample_times(np.random.default_rng(seed), 60)
        assert all(t >= 0 for t in times)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_rate_scales_with_shape(self):
        base = PoissonArrivals(rate_per_s=2.0)
        flat = ShapedArrivals(base=base, shape=DiurnalShape(amplitude=0.3))
        assert flat.mean_rate_per_s == pytest.approx(2.0)
        # A finite flash bump vanishes in the long-run mean by design.
        surge = ShapedArrivals(
            base=base, shape=FlashCrowdShape(at_s=0.0, duration_s=1.0, magnitude=9.0)
        )
        assert surge.mean_rate_per_s == pytest.approx(2.0)

    def test_flash_crowd_bunches_arrivals(self):
        proc = ShapedArrivals(
            base=PoissonArrivals(rate_per_s=5.0),
            shape=FlashCrowdShape(at_s=10.0, duration_s=5.0, magnitude=9.0),
        )
        times = proc.sample_times(np.random.default_rng(3), 400)
        surge = sum(1 for t in times if 10e6 <= t < 15e6)
        before = sum(1 for t in times if 5e6 <= t < 10e6)
        assert surge > 3 * max(before, 1)

    def test_shapes_nest(self):
        proc = ShapedArrivals(
            base=ShapedArrivals(
                base=PoissonArrivals(rate_per_s=3.0),
                shape=DiurnalShape(period_s=8.0, amplitude=0.5),
            ),
            shape=FlashCrowdShape(at_s=4.0, duration_s=2.0, magnitude=2.0),
        )
        times = proc.sample_times(np.random.default_rng(5), 80)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_warp_preserves_count(self):
        base = PoissonArrivals(rate_per_s=4.0)
        proc = ShapedArrivals(base=base, shape=DiurnalShape(amplitude=0.9))
        assert len(proc.sample_times(np.random.default_rng(9), 64)) == 64
