"""FaultPlan validation, scaling and gating semantics."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan


class TestValidation:

    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.enabled
        assert not plan.any_pmc_faults
        assert not plan.any_signal_faults
        assert not plan.any_app_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(pmc_drop_prob=-0.1),
            dict(pmc_drop_prob=1.5),
            dict(signal_drop_prob=2.0),
            dict(crash_prob=-1.0),
            dict(pmc_jitter=-0.2),
            dict(signal_delay_us=-1.0),
            dict(crash_mean_time_us=0.0),
            dict(hang_mean_time_us=-5.0),
            dict(stall_duration_us=0.0),
            dict(stall_check_period_us=0.0),
            # PMC categorical classes must share one unit interval.
            dict(pmc_drop_prob=0.5, pmc_wrap_prob=0.4, pmc_stale_prob=0.2),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultPlan(**kwargs)

    def test_family_flags(self):
        assert FaultPlan(pmc_jitter=0.1).any_pmc_faults
        assert FaultPlan(pmc_drop_prob=0.1).any_pmc_faults
        assert FaultPlan(signal_drop_prob=0.1).any_signal_faults
        assert FaultPlan(signal_delay_us=10.0).any_signal_faults
        assert FaultPlan(crash_prob=0.1).any_app_faults
        assert FaultPlan(hang_prob=0.1).any_app_faults
        assert FaultPlan(stall_prob=0.1).any_app_faults
        assert FaultPlan(stall_prob=0.1).enabled

    def test_to_dict_round_trips(self):
        plan = FaultPlan(pmc_jitter=0.2, signal_drop_prob=0.1)
        assert FaultPlan(**plan.to_dict()) == plan


class TestScaled:

    def test_zero_intensity_disables(self):
        plan = FaultPlan(pmc_jitter=0.2, signal_drop_prob=0.1, crash_prob=0.3)
        assert not plan.scaled(0.0).enabled

    def test_unit_intensity_is_identity(self):
        plan = FaultPlan(pmc_jitter=0.2, signal_drop_prob=0.1, signal_delay_us=200.0)
        assert plan.scaled(1.0) == plan

    def test_linear_in_probs_jitter_and_delay(self):
        plan = FaultPlan(pmc_jitter=0.2, signal_drop_prob=0.1, signal_delay_us=200.0)
        half = plan.scaled(0.5)
        assert half.pmc_jitter == pytest.approx(0.1)
        assert half.signal_drop_prob == pytest.approx(0.05)
        assert half.signal_delay_us == pytest.approx(100.0)

    def test_probabilities_clamped_at_one(self):
        plan = FaultPlan(signal_drop_prob=0.6)
        assert plan.scaled(3.0).signal_drop_prob == 1.0

    def test_time_scales_and_immunity_preserved(self):
        plan = FaultPlan(
            hang_prob=0.2, hang_mean_time_us=7_000.0, targets_immune=False
        )
        scaled = plan.scaled(0.5)
        assert scaled.hang_mean_time_us == 7_000.0
        assert scaled.targets_immune is False

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(signal_drop_prob=0.1).scaled(-1.0)
