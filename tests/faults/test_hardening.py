"""Graceful-degradation hardening of the CPU manager under injected faults."""

import numpy as np
import pytest

from repro.config import LinuxSchedConfig, MachineConfig, ManagerConfig
from repro.core.manager import CpuManager
from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.experiments.base import SimulationSpec, run_simulation
from repro.faults import FaultInjector, FaultPlan
from repro.hw.machine import Machine
from repro.rng import RngRegistry
from repro.sched.linux import LinuxScheduler
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.base import Application, ApplicationSpec
from repro.workloads.patterns import ConstantPattern
from repro.workloads.microbench import bbma_spec
from repro.workloads.suites import PAPER_APPS


def _managed(
    plan,
    hardening=True,
    n_apps=3,
    quantum=40_000.0,
    work=1e9,
    watchdog_quanta=2,
    staleness_quanta=2,
    signal_max_retries=6,
    policy=None,
):
    """A 4-CPU managed system with a live fault injector (no auditor)."""
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=4), engine, TraceRecorder())
    apps = [
        Application.launch(
            ApplicationSpec(
                name=f"app{i}",
                n_threads=2,
                work_per_thread_us=work,
                pattern=ConstantPattern(5.0),
                footprint_lines=256.0,
            ),
            machine,
            np.random.default_rng(i),
        )
        for i in range(n_apps)
    ]
    kernel = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
    kernel.attach(machine, engine, np.random.default_rng(50))
    injector = FaultInjector(plan, RngRegistry(5))
    manager = CpuManager(
        ManagerConfig(
            quantum_us=quantum,
            hardening=hardening,
            watchdog_quanta=watchdog_quanta,
            staleness_quanta=staleness_quanta,
            signal_max_retries=signal_max_retries,
        ),
        policy or LatestQuantumPolicy(),
        kernel,
        faults=injector,
    )
    manager.attach(machine, engine, np.random.default_rng(51))
    manager.register_apps(apps)
    injector.schedule_app_faults(engine, machine, apps)
    kernel.start()
    manager.start()
    return engine, machine, apps, manager, injector


def _connected_ids(manager):
    return {d.app_id for d in manager.arena.connected()}


class TestImmediateRelease:
    """Satellite: mid-quantum death releases the arena slot immediately."""

    def test_killed_app_disconnects_before_next_boundary(self):
        # An inert-but-enabled plan: the exit listener is armed, nothing
        # else ever fires (drop prob 0 would disable the injector).
        plan = FaultPlan(crash_prob=1.0, crash_mean_time_us=1e12)
        engine, machine, apps, manager, _ = _managed(plan)
        engine.run_until(60_000.0, advancer=machine)  # mid-second-quantum
        victim = apps[0]
        assert victim.app_id in _connected_ids(manager)
        for t in victim.threads:
            machine.kill_thread(t.tid)
        # No further events processed: the exit listener already released it.
        assert victim.app_id not in _connected_ids(manager)

    def test_disconnect_app_mid_quantum_unblocks_and_releases(self):
        plan = FaultPlan(crash_prob=1.0, crash_mean_time_us=1e12)
        engine, machine, apps, manager, _ = _managed(plan)
        engine.run_until(60_000.0, advancer=machine)
        victim = next(
            a for a in apps if a.app_id not in manager.selected
            and a.app_id in _connected_ids(manager)
        )
        assert all(machine.thread(t.tid).blocked for t in victim.threads)
        manager.disconnect_app(victim.app_id)
        assert victim.app_id not in _connected_ids(manager)
        # The exit-unblock path freed its threads (a departing app must
        # not leave its process wedged in the blocked state).
        assert not any(machine.thread(t.tid).blocked for t in victim.threads)


class TestWatchdog:

    def test_hung_apps_quarantined(self):
        plan = FaultPlan(hang_prob=1.0, hang_mean_time_us=5_000.0)
        engine, machine, apps, manager, injector = _managed(plan)
        engine.run_until(600_000.0, advancer=machine)
        assert injector.apps_hung == 3
        assert injector.apps_quarantined >= 1
        # Quarantined apps are off the arena and their threads are parked
        # off-CPU in the blocked state (SIGSTOP semantics, no cooperation).
        quarantined = [
            a for a in apps if a.app_id not in _connected_ids(manager)
        ]
        assert quarantined
        for app in quarantined:
            for t in app.threads:
                state = machine.thread(t.tid)
                assert state.blocked and state.cpu is None

    def test_hardening_off_never_quarantines(self):
        plan = FaultPlan(hang_prob=1.0, hang_mean_time_us=5_000.0)
        engine, machine, apps, manager, injector = _managed(plan, hardening=False)
        engine.run_until(600_000.0, advancer=machine)
        assert injector.apps_hung == 3
        assert injector.apps_quarantined == 0
        assert _connected_ids(manager) == {a.app_id for a in apps}

    def test_slow_apps_not_quarantined(self):
        # Transient stalls shorter than the watchdog patience: degraded
        # progress is not a hang and must never be quarantined.
        plan = FaultPlan(
            stall_prob=1.0, stall_duration_us=10_000.0, stall_check_period_us=80_000.0
        )
        engine, machine, apps, manager, injector = _managed(
            plan, watchdog_quanta=3
        )
        engine.run_until(600_000.0, advancer=machine)
        assert injector.stalls_injected > 0
        assert injector.apps_quarantined == 0


class TestStalenessFallback:

    def test_all_stale_falls_back_to_head_first(self):
        # Every read after the first returns a stale snapshot: no rate can
        # ever be formed, so estimates freeze and selection degrades to
        # bandwidth-agnostic head-first.
        plan = FaultPlan(pmc_stale_prob=1.0)
        engine, machine, apps, manager, injector = _managed(
            plan, policy=QuantaWindowPolicy()
        )
        engine.run_until(600_000.0, advancer=machine)
        assert injector.pmc_stale > 0
        assert injector.stale_fallbacks > 0
        assert injector.headfirst_fallbacks > 0

    def test_clean_reads_never_fall_back(self):
        # App faults only: counter reads stay pristine, estimates stay
        # fresh, and the staleness machinery must not trigger.
        plan = FaultPlan(
            stall_prob=0.1, stall_duration_us=5_000.0, stall_check_period_us=100_000.0
        )
        engine, machine, apps, manager, injector = _managed(
            plan, policy=QuantaWindowPolicy()
        )
        engine.run_until(400_000.0, advancer=machine)
        assert injector.headfirst_fallbacks == 0


class TestSignalRetries:

    def _spec(self, drop, hardening=True, retries=6, audit=True):
        app = PAPER_APPS["CG"].scaled(0.05)
        return SimulationSpec(
            targets=[app, app],
            background=[bbma_spec(), bbma_spec()],
            scheduler=QuantaWindowPolicy(),
            manager=ManagerConfig(
                quantum_us=20_000.0, hardening=hardening, signal_max_retries=retries
            ),
            seed=13,
            audit=audit,
            faults=FaultPlan(signal_drop_prob=drop, signal_delay_us=100.0),
        )

    def test_lossy_signals_retried_and_run_completes_clean(self):
        result = run_simulation(self._spec(0.4))
        assert result.faults.signals_dropped > 0
        assert result.faults.signal_retries > 0
        assert result.audit is not None and result.audit.ok

    def test_retries_disabled_by_config(self):
        # Without the verifier a lost unblock can wedge an app
        # indefinitely (this is exactly why the verifier exists), so run
        # time-bounded rather than to completion.
        plan = FaultPlan(signal_drop_prob=0.4, signal_delay_us=100.0)
        engine, machine, apps, manager, injector = _managed(
            plan, signal_max_retries=0, quantum=20_000.0
        )
        engine.run_until(600_000.0, advancer=machine)
        assert manager.signals.dropped > 0
        assert injector.signal_retries == 0


class TestDegradationCounters:

    def test_counters_surface_on_run_result(self):
        app = PAPER_APPS["CG"].scaled(0.05)
        spec = SimulationSpec(
            targets=[app, app],
            background=[bbma_spec(), bbma_spec()],
            scheduler=QuantaWindowPolicy(),
            seed=13,
            faults=FaultPlan(pmc_jitter=0.2, pmc_drop_prob=0.1),
        )
        result = run_simulation(spec)
        assert result.faults is not None
        assert result.faults.any_injected
        assert result.faults.pmc_jittered + result.faults.pmc_dropped > 0
        d = result.faults.to_dict()
        assert d["pmc_dropped"] == result.faults.pmc_dropped

    def test_faults_require_policy_scheduler(self):
        from repro.errors import ConfigError

        app = PAPER_APPS["CG"].scaled(0.05)
        spec = SimulationSpec(
            targets=[app],
            scheduler="dedicated",
            faults=FaultPlan(pmc_drop_prob=0.5),
        )
        with pytest.raises(ConfigError):
            run_simulation(spec)
