"""Zero-rate fault plans are bit-identical to fault-free runs.

The guarantee is structural: a disabled plan builds no injector, arms no
hook and schedules no engine event, so the simulated trajectory — and the
whole comparable ``RunResult`` — is exactly the fault-free one, serially
and through the multiprocess grid runner.
"""

import dataclasses

from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.experiments.base import SimulationSpec, run_simulation
from repro.faults import FaultPlan
from repro.parallel import run_many
from repro.workloads.microbench import bbma_spec
from repro.workloads.suites import PAPER_APPS


def _spec(policy, faults=None, seed=11):
    app = PAPER_APPS["CG"].scaled(0.05)
    return SimulationSpec(
        targets=[app, app],
        background=[bbma_spec(), bbma_spec()],
        scheduler=policy,
        seed=seed,
        faults=faults,
    )


class TestZeroRateIdentity:

    def test_serial_bit_identical(self):
        base = run_simulation(_spec(QuantaWindowPolicy()))
        zero = run_simulation(_spec(QuantaWindowPolicy(), faults=FaultPlan()))
        assert base == zero
        assert zero.faults is None

    def test_scaled_to_zero_bit_identical(self):
        ref = FaultPlan(pmc_jitter=0.2, signal_drop_prob=0.1, hang_prob=0.3)
        base = run_simulation(_spec(LatestQuantumPolicy()))
        zero = run_simulation(_spec(LatestQuantumPolicy(), faults=ref.scaled(0.0)))
        assert base == zero

    def test_parallel_matches_serial(self):
        specs = [
            _spec(QuantaWindowPolicy()),
            _spec(QuantaWindowPolicy(), faults=FaultPlan()),
            _spec(
                QuantaWindowPolicy(),
                faults=FaultPlan(pmc_jitter=0.2, signal_drop_prob=0.1),
            ),
        ]

        def rebuild(s):
            return dataclasses.replace(s, scheduler=QuantaWindowPolicy())

        serial = run_many([rebuild(s) for s in specs], jobs=1)
        parallel = run_many([rebuild(s) for s in specs], jobs=2)
        assert serial == parallel
        # Within one batch: fault-free == zero-rate, and both have no stats.
        assert serial[0] == serial[1]
        assert serial[0].faults is None and serial[1].faults is None
        # The faulted run is deterministic too (stats participate in ==).
        assert parallel[2].faults is not None
        assert parallel[2].faults == serial[2].faults


class TestFaultedDeterminism:

    def test_same_seed_same_trajectory_and_stats(self):
        plan = FaultPlan(
            pmc_jitter=0.2,
            pmc_drop_prob=0.05,
            pmc_stale_prob=0.05,
            signal_drop_prob=0.1,
            signal_delay_us=200.0,
        )
        a = run_simulation(_spec(QuantaWindowPolicy(), faults=plan))
        b = run_simulation(_spec(QuantaWindowPolicy(), faults=plan))
        assert a == b
        assert a.faults == b.faults

    def test_seed_changes_fault_trajectory(self):
        plan = FaultPlan(pmc_jitter=0.3, pmc_drop_prob=0.2, signal_drop_prob=0.2)
        a = run_simulation(_spec(QuantaWindowPolicy(), faults=plan, seed=11))
        b = run_simulation(_spec(QuantaWindowPolicy(), faults=plan, seed=12))
        assert a != b
