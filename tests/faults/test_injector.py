"""FaultInjector unit tests: draw discipline, perturbation classes, immunity."""

import pytest

from repro.core.arena import ArenaSample
from repro.faults import FaultInjector, FaultPlan
from repro.rng import RngRegistry


def _injector(plan, seed=7):
    return FaultInjector(plan, RngRegistry(seed))


def _sample(t, tx, rt):
    return ArenaSample(time_us=t, cum_transactions=tx, cum_runtime_us=rt)


class TestConstruction:

    def test_requires_enabled_plan(self):
        with pytest.raises(ValueError):
            _injector(FaultPlan())

    def test_signal_params_mirror_plan(self):
        plan = FaultPlan(
            signal_drop_prob=0.1, signal_duplicate_prob=0.02, signal_delay_us=200.0
        )
        params = _injector(plan).signal_params()
        assert params["drop_prob"] == 0.1
        assert params["duplicate_prob"] == 0.02
        assert params["jitter_us"] == 200.0
        assert params["rng"] is not None


class TestPerturbSample:

    def test_drop_certain(self):
        inj = _injector(FaultPlan(pmc_drop_prob=1.0))
        assert inj.perturb_sample(1, _sample(10.0, 5.0, 8.0), None) is None
        assert inj.pmc_dropped == 1

    def test_first_sample_passes_through_without_prev(self):
        # Only drops can hit the first read; everything else needs `prev`.
        inj = _injector(FaultPlan(pmc_stale_prob=1.0))
        s = _sample(10.0, 5.0, 8.0)
        assert inj.perturb_sample(1, s, None) is s

    def test_stale_returns_previous_counters_at_new_time(self):
        inj = _injector(FaultPlan(pmc_stale_prob=1.0))
        prev = _sample(10.0, 5.0, 8.0)
        out = inj.perturb_sample(1, _sample(20.0, 9.0, 16.0), prev)
        assert out.time_us == 20.0
        assert out.cum_transactions == prev.cum_transactions
        assert out.cum_runtime_us == prev.cum_runtime_us
        assert inj.pmc_stale == 1

    def test_wrap_regresses_to_interval_delta(self):
        inj = _injector(FaultPlan(pmc_wrap_prob=1.0))
        prev = _sample(10.0, 100.0, 50.0)
        out = inj.perturb_sample(1, _sample(20.0, 130.0, 60.0), prev)
        assert out.cum_transactions == pytest.approx(30.0)
        assert out.cum_runtime_us == pytest.approx(10.0)
        assert inj.pmc_wraps == 1

    def test_jitter_bounded_and_never_regresses(self):
        inj = _injector(FaultPlan(pmc_jitter=0.5))
        prev = _sample(10.0, 100.0, 50.0)
        for i in range(200):
            out = inj.perturb_sample(1, _sample(20.0, 110.0, 60.0), prev)
            delta = out.cum_transactions - prev.cum_transactions
            assert 10.0 * 0.5 - 1e-9 <= delta <= 10.0 * 1.5 + 1e-9
            assert out.cum_transactions >= prev.cum_transactions
        assert inj.pmc_jittered == 200

    def test_zero_delta_not_jittered(self):
        inj = _injector(FaultPlan(pmc_jitter=0.5))
        prev = _sample(10.0, 100.0, 50.0)
        s = _sample(20.0, 100.0, 60.0)
        assert inj.perturb_sample(1, s, prev) is s

    def test_deterministic_per_seed(self):
        plan = FaultPlan(
            pmc_jitter=0.3, pmc_drop_prob=0.2, pmc_wrap_prob=0.1, pmc_stale_prob=0.2
        )

        def trajectory(seed):
            inj = _injector(plan, seed=seed)
            prev = _sample(0.0, 0.0, 0.0)
            out = []
            for i in range(50):
                s = inj.perturb_sample(1, _sample(10.0 * i, 7.0 * i, 9.0 * i), prev)
                out.append(None if s is None else (s.cum_transactions, s.cum_runtime_us))
                if s is not None:
                    prev = s
            return out

        assert trajectory(3) == trajectory(3)
        assert trajectory(3) != trajectory(4)

    def test_stream_isolated_from_other_registry_streams(self):
        # Pulling unrelated named streams first never changes fault draws.
        plan = FaultPlan(pmc_drop_prob=0.5)
        reg_a = RngRegistry(11)
        reg_b = RngRegistry(11)
        reg_b.stream("kernel")
        reg_b.stream("target0.CG")
        inj_a = FaultInjector(plan, reg_a)
        inj_b = FaultInjector(plan, reg_b)
        s = _sample(10.0, 5.0, 8.0)
        for _ in range(32):
            a = inj_a.perturb_sample(1, s, None)
            b = inj_b.perturb_sample(1, s, None)
            assert (a is None) == (b is None)


class TestAppFaultScheduling:

    def _machine(self):
        from repro.config import MachineConfig
        from repro.hw.machine import Machine
        from repro.sim.engine import Engine
        from repro.sim.trace import TraceRecorder

        engine = Engine()
        machine = Machine(MachineConfig(n_cpus=4), engine, TraceRecorder())
        return engine, machine

    def _apps(self, machine, n=2):
        import numpy as np

        from repro.workloads.base import Application, ApplicationSpec
        from repro.workloads.patterns import ConstantPattern

        specs = [
            ApplicationSpec(
                name=f"app{i}",
                n_threads=2,
                work_per_thread_us=1e9,
                pattern=ConstantPattern(5.0),
                footprint_lines=256.0,
            )
            for i in range(n)
        ]
        return [
            Application.launch(s, machine, np.random.default_rng(i))
            for i, s in enumerate(specs)
        ]

    def test_certain_crash_kills_all_threads(self):
        engine, machine = self._machine()
        apps = self._apps(machine)
        inj = _injector(FaultPlan(crash_prob=1.0, crash_mean_time_us=1_000.0))
        inj.schedule_app_faults(engine, machine, apps)
        engine.run_until(1_000_000.0, advancer=machine)
        assert inj.apps_crashed == 2
        assert all(t.finished for a in apps for t in a.threads)

    def test_immune_apps_never_faulted(self):
        engine, machine = self._machine()
        apps = self._apps(machine)
        inj = _injector(FaultPlan(crash_prob=1.0, crash_mean_time_us=1_000.0))
        inj.schedule_app_faults(
            engine, machine, apps, immune_ids={apps[0].app_id}
        )
        engine.run_until(1_000_000.0, advancer=machine)
        assert inj.apps_crashed == 1
        assert not any(t.finished for t in apps[0].threads)
        assert all(t.finished for t in apps[1].threads)

    def test_hang_stalls_threads_without_finishing_them(self):
        engine, machine = self._machine()
        apps = self._apps(machine)
        inj = _injector(FaultPlan(hang_prob=1.0, hang_mean_time_us=1_000.0))
        inj.schedule_app_faults(engine, machine, apps)
        engine.run_until(1_000_000.0, advancer=machine)
        assert inj.apps_hung == 2
        for a in apps:
            for t in a.threads:
                assert machine.thread(t.tid).stalled
                assert not machine.thread(t.tid).finished

    def test_transient_stall_resumes(self):
        engine, machine = self._machine()
        apps = self._apps(machine, n=1)
        inj = _injector(
            FaultPlan(
                stall_prob=1.0, stall_duration_us=5_000.0, stall_check_period_us=50_000.0
            )
        )
        inj.schedule_app_faults(engine, machine, apps)
        # First lottery fires at 50 ms and stalls; by 58 ms it has resumed.
        engine.run_until(52_000.0, advancer=machine)
        assert inj.stalls_injected >= 1
        assert all(machine.thread(t.tid).stalled for t in apps[0].threads)
        engine.run_until(58_000.0, advancer=machine)
        assert not any(machine.thread(t.tid).stalled for t in apps[0].threads)

    def test_draws_consumed_for_immune_apps(self):
        # Immunity masks the fault but must not shift the stream: the
        # non-immune apps' crash decisions are identical either way.
        def crashed_indices(immune_indices):
            engine, machine = self._machine()
            apps = self._apps(machine, n=4)
            inj = _injector(FaultPlan(crash_prob=0.5, crash_mean_time_us=1_000.0))
            immune = {apps[i].app_id for i in immune_indices}
            inj.schedule_app_faults(engine, machine, apps, immune_ids=immune)
            engine.run_until(1_000_000.0, advancer=machine)
            return {
                i for i, a in enumerate(apps) if all(t.finished for t in a.threads)
            }

        free = crashed_indices(set())
        masked = crashed_indices({0, 1})
        assert masked == free - {0, 1}
