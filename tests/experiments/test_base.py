"""Simulation runner tests."""

import pytest

from repro.config import MachineConfig
from repro.core.policies import LatestQuantumPolicy
from repro.errors import ConfigError
from repro.experiments.base import (
    SimulationSpec,
    run_simulation,
    run_simulation_with_handle,
    solo_run,
)
from repro.workloads.base import ApplicationSpec
from repro.workloads.microbench import bbma_spec, nbbma_spec
from repro.workloads.patterns import ConstantPattern


def _app(rate=2.0, work=40_000.0):
    return ApplicationSpec(
        name="t",
        n_threads=2,
        work_per_thread_us=work,
        pattern=ConstantPattern(rate),
        footprint_lines=256.0,
    )


class TestSchedulerSelection:
    @pytest.mark.parametrize("sched", ["dedicated", "linux", "gang"])
    def test_string_schedulers(self, sched):
        result = run_simulation(SimulationSpec(targets=[_app()], scheduler=sched, seed=1))
        assert result.mean_target_turnaround_us() > 0

    def test_policy_scheduler(self):
        result = run_simulation(
            SimulationSpec(targets=[_app()], background=[nbbma_spec()], scheduler=LatestQuantumPolicy(), seed=1)
        )
        assert result.mean_target_turnaround_us() > 0

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigError):
            run_simulation(SimulationSpec(targets=[_app()], scheduler="cfs"))

    def test_no_targets_rejected(self):
        with pytest.raises(ConfigError):
            run_simulation(SimulationSpec(targets=[]))


class TestStopSemantics:
    def test_stops_when_targets_finish_background_running(self):
        result, handle = run_simulation_with_handle(
            SimulationSpec(targets=[_app()], background=[bbma_spec()], scheduler="dedicated", seed=1)
        )
        bg = [a for a in handle.apps if a.name == "BBMA"][0]
        assert not bg.finished
        assert all(a.finished for a in handle.target_apps)

    def test_max_time_guard(self):
        with pytest.raises(Exception):
            run_simulation(
                SimulationSpec(targets=[_app(work=1e9)], scheduler="dedicated", max_time_us=10_000.0)
            )


class TestHandle:
    def test_handle_exposes_state(self):
        result, handle = run_simulation_with_handle(
            SimulationSpec(targets=[_app()], scheduler="linux", seed=2, timeline_period_us=5_000.0)
        )
        assert handle.machine.all_finished() or any(not a.finished for a in handle.apps)
        assert handle.timeline is not None
        assert len(handle.timeline.points) > 1
        assert handle.manager is None

    def test_manager_created_for_policy(self):
        result, handle = run_simulation_with_handle(
            SimulationSpec(
                targets=[_app()], background=[nbbma_spec()], scheduler=LatestQuantumPolicy(), seed=2
            )
        )
        assert handle.manager is not None
        assert handle.manager.quanta >= 1


class TestSoloRun:
    def test_solo_run_is_dedicated(self):
        result = solo_run(_app(rate=1.0))
        # solo with 2 light threads: turnaround ~= work
        assert result.mean_target_turnaround_us() == pytest.approx(40_000.0, rel=0.05)

    def test_custom_machine(self):
        result = solo_run(_app(), machine=MachineConfig(n_cpus=2))
        assert result.mean_target_turnaround_us() > 0
