"""Validation harness tests: no claim may regress to MISS."""

import pytest

from repro.experiments.validation import (
    Claim,
    _score,
    format_validation,
    run_validation,
)


class TestScoring:
    @pytest.fixture
    def claim(self):
        return Claim("X", "test claim", 10.0, (8.0, 12.0), (5.0, 15.0))

    def test_pass_inside_band(self, claim):
        assert _score(claim, 9.0).verdict == "PASS"

    def test_shape_outside_pass_inside_shape(self, claim):
        assert _score(claim, 6.0).verdict == "SHAPE"
        assert _score(claim, 14.0).verdict == "SHAPE"

    def test_miss_outside_shape(self, claim):
        assert _score(claim, 2.0).verdict == "MISS"
        assert _score(claim, 20.0).verdict == "MISS"


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def results(self):
        # Small scale: fast, and the validation bands are scale-invariant.
        return run_validation(work_scale=0.15)

    def test_no_claim_misses(self, results):
        misses = [r.claim.claim_id for r in results if r.verdict == "MISS"]
        assert misses == [], f"regressed claims: {misses}"

    def test_calibration_claims_pass_exactly(self, results):
        for r in results:
            if r.claim.claim_id.startswith("CAL-"):
                assert r.verdict == "PASS", r.claim.claim_id

    def test_figure1_claims_pass(self, results):
        for r in results:
            if r.claim.claim_id.startswith("F1B-"):
                assert r.verdict == "PASS", (r.claim.claim_id, r.measured)

    def test_all_claims_scored(self, results):
        assert len(results) == 15

    def test_format(self, results):
        out = format_validation(results)
        assert "VALIDATION" in out
        assert "PASS" in out
        assert "MISS of" in out
