"""CAL-1 calibration harness tests."""

import pytest

from repro.experiments.calibration import format_calibration, run_calibration


@pytest.fixture(scope="module")
def result():
    return run_calibration(work_scale=0.05)


class TestAnchors:
    def test_stream_capacity(self, result):
        # sustained 4-thread STREAM == the paper's 29.5 tx/us measurement
        assert result.stream_rate_txus == pytest.approx(29.5, rel=0.03)

    def test_stream_bandwidth_mbps(self, result):
        assert result.stream_bandwidth_mbps == pytest.approx(29.5 * 64, rel=0.03)

    def test_bbma_rate(self, result):
        assert result.bbma_rate_txus == pytest.approx(23.6, rel=0.05)

    def test_nbbma_negligible(self, result):
        # At this tiny work scale the compulsory-miss warmup (2048 lines)
        # dominates the measured average; the steady rate is 0.0037. The
        # full-scale check lives in tests/workloads/test_microbench.py.
        assert result.nbbma_rate_txus < 0.25

    def test_solo_rates_ordered_as_figure(self, result):
        rates = list(result.solo_rates_txus.values())
        assert rates == sorted(rates)

    def test_solo_rate_extremes(self, result):
        assert result.solo_rates_txus["Radiosity"] == pytest.approx(0.48, rel=0.15)
        assert result.solo_rates_txus["CG"] == pytest.approx(23.31, rel=0.10)

    def test_turnarounds_recorded(self, result):
        assert all(v > 0 for v in result.solo_turnarounds_us.values())


class TestFormat:
    def test_renders_with_paper_columns(self, result):
        out = format_calibration(result)
        assert "CAL-1" in out
        assert "29.50" in out
        assert "STREAM" in out
