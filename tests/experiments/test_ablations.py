"""Ablation harness tests (tiny scale: structure + basic sanity)."""

import pytest

from repro.experiments.ablations import (
    format_arbitration_ablation,
    format_fitness_ablation,
    format_quantum_ablation,
    format_window_ablation,
    run_arbitration_ablation,
    run_fitness_ablation,
    run_quantum_ablation,
    run_window_ablation,
)


class TestWindowAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_window_ablation(
            window_lengths=(1, 5), ewma_alphas=(0.5,), work_scale=0.05, apps=["Raytrace"]
        )

    def test_estimator_labels(self, rows):
        assert [r.estimator for r in rows] == ["latest", "window-1", "window-5", "ewma-0.50"]

    def test_improvements_recorded(self, rows):
        for r in rows:
            assert "Raytrace" in r.improvements

    def test_format(self, rows):
        out = format_window_ablation(rows)
        assert "ABL-W" in out and "Raytrace" in out


class TestQuantumAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_quantum_ablation(quanta_ms=(50.0, 200.0), app_name="Barnes", work_scale=0.05)

    def test_rows_per_quantum(self, rows):
        assert [r.quantum_ms for r in rows] == [50.0, 200.0]

    def test_shorter_quantum_more_dispatch_churn(self, rows):
        # the paper's observation: smaller manager quanta cause more
        # scheduling churn against the kernel
        assert rows[0].dispatches > rows[1].dispatches

    def test_format(self, rows):
        assert "ABL-Q" in format_quantum_ablation(rows, "Barnes")


class TestFitnessAblation:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fitness_ablation(app_names=("CG",), work_scale=0.05)

    def test_all_fitness_functions_present(self, results):
        assert set(results) == {"paper", "linear", "lowest-bw", "constant"}

    def test_format(self, results):
        assert "ABL-F" in format_fitness_ablation(results)


class TestArbitrationAblation:
    @pytest.fixture(scope="class")
    def results(self):
        return run_arbitration_ablation(app_names=("Barnes", "CG"), work_scale=0.05)

    def test_both_models_present(self, results):
        assert set(results) == {"shared-latency", "max-min"}

    def test_max_min_protects_light_apps(self, results):
        # the idealized fair bus slows low-demand apps less under BBMA
        assert results["max-min"]["Barnes"] <= results["shared-latency"]["Barnes"] + 0.05

    def test_format(self, results):
        assert "ABL-A" in format_arbitration_ablation(results)
