"""Vectorized hot path: full-run bit-identity gates.

The ``solver_mode="vector"`` machine (numpy-batched bus solves, the
dirty-mask lane cache, the batched settle loop) and the incremental
selection pass are pure evaluation-order-preserving optimizations: an
entire simulation — every turnaround, every counter that carries physics
— must be byte-equal to the ``newton`` reference, under both kernels,
with the audit on, and through the chunked-parallel dispatcher. These
are the end-to-end gates behind ``benchmarks/bench_perf.py``'s
``vectorized`` section.
"""

from repro.config import BusConfig, MachineConfig
from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.experiments.base import SimulationSpec, run_simulation
from repro.parallel import run_many
from repro.workloads.microbench import bbma_spec, nbbma_spec
from repro.workloads.suites import PAPER_APPS

_SCALE = 0.05


def _machine(mode: str, n_cpus: int = 8) -> MachineConfig:
    return MachineConfig(
        n_cpus=n_cpus,
        bus=BusConfig(
            solver_mode=mode,
            capacity_txus=BusConfig().capacity_txus * (n_cpus / 4.0),
        ),
    )


def _spec(mode: str, scheduler, **kwargs) -> SimulationSpec:
    apps = [PAPER_APPS[name].scaled(_SCALE) for name in ("CG", "Barnes")]
    return SimulationSpec(
        targets=[apps[0], apps[0], apps[1]],
        background=[bbma_spec(), bbma_spec(), nbbma_spec()],
        scheduler=scheduler,
        machine=_machine(mode),
        seed=11,
        **kwargs,
    )


class TestVectorRunIdentity:
    def test_linux_run_bit_identical_to_newton(self):
        ref = run_simulation(_spec("newton", "linux"))
        vec = run_simulation(_spec("vector", "linux"))
        assert vec == ref  # compare=False excludes observability counters
        assert vec.apps == ref.apps

    def test_policy_run_bit_identical_to_newton(self):
        for policy_cls in (LatestQuantumPolicy, QuantaWindowPolicy):
            ref = run_simulation(_spec("newton", policy_cls()))
            vec = run_simulation(_spec("vector", policy_cls()))
            assert vec == ref

    def test_incremental_selection_matches_full_rerank(self):
        # Same solver on both sides: this isolates the selection rewrite.
        full = run_simulation(_spec("vector", QuantaWindowPolicy(incremental=False)))
        inc = run_simulation(_spec("vector", QuantaWindowPolicy(incremental=True)))
        assert inc == full

    def test_vector_identity_survives_audit(self):
        # The audit replays selections through the differential oracle;
        # it must neither fire nor perturb the vectorized run.
        audited = run_simulation(_spec("vector", QuantaWindowPolicy(), audit=True))
        plain = run_simulation(_spec("vector", QuantaWindowPolicy()))
        ref = run_simulation(_spec("newton", QuantaWindowPolicy()))
        assert audited.audit is not None and audited.audit.violations == ()
        assert audited == plain == ref

    def test_vector_survives_chunked_parallel_dispatch(self):
        def grid():
            # Fresh policy instances per call: policies are stateful.
            return [_spec("vector", "linux"), _spec("vector", QuantaWindowPolicy())]

        serial = run_many(grid(), jobs=1)
        parallel = run_many(grid(), jobs=2)
        assert serial == parallel

    def test_profile_counters_prove_vector_path_ran(self):
        result = run_simulation(_spec("vector", QuantaWindowPolicy(), profile=True))
        prof = result.profile
        assert prof is not None
        assert prof["batched_lanes"] > 0
        assert prof["dirty_mask_hits"] >= 0
        assert prof["selection_calls"] >= 1
        newton = run_simulation(_spec("newton", QuantaWindowPolicy(), profile=True))
        assert newton.profile["batched_lanes"] == 0
