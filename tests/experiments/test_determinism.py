"""Regression tests: parallel execution is bit-identical to serial.

The acceptance bar for the fan-out layer is exact equality — the same
floats, the same orderings, the same dataclasses — between ``jobs=1`` and
``jobs=N``, and between repeated invocations. Anything process-dependent
(global instance counters, set iteration order) would show up here.
"""

from repro.experiments.fig2 import run_fig2
from repro.parallel import run_many
from tests.test_parallel import _specs

_KW = dict(work_scale=0.05, apps=["Barnes", "CG"], seed=7)


class TestFig2Determinism:
    def test_parallel_bit_identical_to_serial(self):
        serial = run_fig2("A", jobs=1, **_KW)
        parallel = run_fig2("A", jobs=4, **_KW)
        assert serial == parallel  # frozen dataclasses: exact float equality
        for s_row, p_row in zip(serial, parallel):
            assert s_row.linux_turnaround_us == p_row.linux_turnaround_us
            for s_cell, p_cell in zip(s_row.cells, p_row.cells):
                assert s_cell.turnaround_us == p_cell.turnaround_us
                assert s_cell.improvement_percent == p_cell.improvement_percent

    def test_repeated_parallel_runs_identical(self):
        first = run_fig2("A", jobs=4, **_KW)
        second = run_fig2("A", jobs=4, **_KW)
        assert first == second


class TestRunResultDeterminism:
    def test_full_run_results_identical_including_ids(self):
        specs = _specs(3)
        serial = run_many(specs, jobs=1)
        parallel = run_many(specs, jobs=3)
        for s, p in zip(serial, parallel):
            assert s == p
            assert [a.app_id for a in s.apps] == [a.app_id for a in p.apps]
            assert s.target_names == p.target_names
            assert s.bus_solve_calls == p.bus_solve_calls
            assert s.bus_cache_hits == p.bus_cache_hits
