"""Figure 2 harness tests (small scale, qualitative shapes)."""

import pytest

from repro.core.policies import EwmaPolicy, LatestQuantumPolicy, QuantaWindowPolicy
from repro.errors import ConfigError
from repro.experiments.fig2 import (
    WORKLOAD_SETS,
    _fresh_policy,
    format_fig2,
    run_fig2,
)


@pytest.fixture(scope="module")
def set_a_rows():
    return run_fig2("A", work_scale=0.08, apps=["Barnes", "CG"])


class TestStructure:
    def test_sets_defined(self):
        assert set(WORKLOAD_SETS) == {"A", "B", "C"}
        assert WORKLOAD_SETS["C"] == ("BBMA", "BBMA", "nBBMA", "nBBMA")

    def test_unknown_set_rejected(self):
        with pytest.raises(ConfigError):
            run_fig2("D", work_scale=0.05, apps=["CG"])

    def test_rows_and_cells(self, set_a_rows):
        assert [r.name for r in set_a_rows] == ["Barnes", "CG"]
        for row in set_a_rows:
            assert {c.policy for c in row.cells} == {"latest-quantum", "quanta-window"}
            assert row.linux_turnaround_us > 0

    def test_improvement_lookup(self, set_a_rows):
        row = set_a_rows[0]
        assert row.improvement("latest-quantum") == row.cells[0].improvement_percent
        with pytest.raises(KeyError):
            row.improvement("nonexistent")


class TestShapes:
    def test_policies_beat_linux_on_saturated_bus(self, set_a_rows):
        # Set A is the paper's headline: every app improves.
        for row in set_a_rows:
            for cell in row.cells:
                assert cell.improvement_percent > 0, (row.name, cell.policy)

    def test_improvement_consistent_with_turnarounds(self, set_a_rows):
        for row in set_a_rows:
            for cell in row.cells:
                expected = (row.linux_turnaround_us - cell.turnaround_us) / row.linux_turnaround_us * 100
                assert cell.improvement_percent == pytest.approx(expected)


class TestPolicyCloning:
    def test_fresh_window_policy(self):
        template = QuantaWindowPolicy(window_length=7)
        template.on_sample(1, 5.0)
        clone = _fresh_policy(template)
        assert clone is not template
        assert clone.window_length == 7
        assert clone.estimate(1) is None  # no state leakage

    def test_fresh_latest_policy(self):
        template = LatestQuantumPolicy(bus_capacity_txus=20.0)
        template.on_quantum(1, 5.0)
        clone = _fresh_policy(template)
        assert clone.bus_capacity_txus == 20.0
        assert clone.estimate(1) is None

    def test_fresh_ewma_policy(self):
        template = EwmaPolicy(alpha=0.25)
        clone = _fresh_policy(template)
        assert clone.alpha == 0.25


class TestFormatting:
    def test_render(self, set_a_rows):
        out = format_fig2("A", set_a_rows)
        assert "FIG-2A" in out
        assert "latest-quantum" in out
        assert "%" in out

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigError):
            format_fig2("A", [])
