"""DYN-1 harness tests: sweep structure, determinism, CLI, export."""

import pytest

from repro.dynamic import TraceArrivals
from repro.errors import ConfigError
from repro.experiments.dynamic import (
    DYNAMIC_POLICIES,
    format_dynamic,
    make_arrivals,
    run_dynamic_sweep,
)

SWEEP_KW = dict(rates_per_s=[3.0], n_jobs=6, replications=2, seed=7, work_scale=0.05)


@pytest.fixture(scope="module")
def sweep_rows():
    return run_dynamic_sweep(**SWEEP_KW)


class TestSweep:
    def test_grid_shape(self, sweep_rows):
        assert len(sweep_rows) == len(DYNAMIC_POLICIES)
        assert {r.policy for r in sweep_rows} == set(DYNAMIC_POLICIES)
        assert all(len(r.summaries) == 2 for r in sweep_rows)

    def test_all_points_complete_without_starvation(self, sweep_rows):
        for row in sweep_rows:
            assert row.starvation_ok
            for s in row.summaries:
                assert s.n_completed == 6
                assert s.n_dropped == 0

    def test_metrics_sane(self, sweep_rows):
        for row in sweep_rows:
            assert row.mean_response_us > 0
            assert row.mean_slowdown >= 1.0
            assert row.throughput_jobs_per_s > 0
            assert 0.0 <= row.saturated_fraction <= 1.0

    def test_serial_parallel_identical(self, sweep_rows):
        """The whole sweep — including DynamicStats — is worker-invariant."""
        parallel = run_dynamic_sweep(jobs=2, **SWEEP_KW)
        assert parallel == sweep_rows

    def test_format(self, sweep_rows):
        text = format_dynamic(sweep_rows)
        assert "DYN-1" in text
        assert "latest_quantum" in text
        assert "ok" in text
        with pytest.raises(ConfigError):
            format_dynamic([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            run_dynamic_sweep(policies=["fifo"], **SWEEP_KW)

    def test_zero_replications_rejected(self):
        kw = dict(SWEEP_KW)
        kw["replications"] = 0
        with pytest.raises(ConfigError):
            run_dynamic_sweep(**kw)


class TestRunDeterminism:
    def test_acceptance_run_bit_identical(self):
        """`repro dynamic --policy latest_quantum --arrival poisson --seed 7`
        must reproduce bit-identically run to run."""
        kw = dict(
            policies=["latest_quantum"],
            rates_per_s=[2.0],
            n_jobs=6,
            replications=1,
            seed=7,
            work_scale=0.05,
        )
        assert run_dynamic_sweep(**kw) == run_dynamic_sweep(**kw)

    def test_seed_changes_results(self):
        kw = dict(SWEEP_KW, policies=["linux"])
        a = run_dynamic_sweep(**kw)
        b = run_dynamic_sweep(**{**kw, "seed": 8})
        assert a != b


class TestArrivalFactory:
    def test_poisson(self):
        assert make_arrivals("poisson", 2.0).mean_rate_per_s == 2.0

    def test_mmpp_mean_rate_exact(self):
        proc = make_arrivals("mmpp", 2.0)
        assert proc.mean_rate_per_s == pytest.approx(2.0)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_arrivals("uniform", 1.0)
        with pytest.raises(ConfigError):
            make_arrivals("poisson", -1.0)

    def test_trace_sweep(self):
        trace = TraceArrivals(times_us=tuple(float(t) for t in range(10_000, 60_000, 10_000)))
        rows = run_dynamic_sweep(
            policies=["linux"],
            arrivals=trace,
            n_jobs=5,
            replications=1,
            seed=7,
            work_scale=0.05,
        )
        assert len(rows) == 1
        assert rows[0].rate_per_s == pytest.approx(trace.mean_rate_per_s)
        assert rows[0].summaries[0].n_completed == 5


class TestCli:
    def test_dynamic_subcommand(self, capsys):
        from repro.cli import main

        code = main(
            [
                "dynamic",
                "--policy", "latest_quantum",
                "--arrival", "poisson",
                "--rate", "3.0",
                "--seed", "7",
                "--scale", "0.05",
                "--num-jobs", "5",
                "--replications", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DYN-1" in out
        assert "latest_quantum" in out

    def test_trace_file_flag(self, tmp_path, capsys):
        from repro.cli import main

        trace = TraceArrivals(times_us=(10_000.0, 30_000.0, 80_000.0))
        path = trace.to_json(str(tmp_path / "trace.json"))
        code = main(
            [
                "dynamic",
                "--policy", "linux",
                "--arrival", "trace",
                "--trace-file", path,
                "--seed", "7",
                "--scale", "0.05",
                "--replications", "1",
            ]
        )
        assert code == 0
        assert "DYN-1" in capsys.readouterr().out

    def test_rate_and_rates_exclusive(self):
        from repro.cli import main

        with pytest.raises(ConfigError):
            main(["dynamic", "--rate", "1.0", "--rates", "1.0,2.0"])


class TestExport:
    def test_export_dynamic_csv(self, tmp_path, sweep_rows):
        from repro.experiments.export import export_dynamic

        path = export_dynamic(sweep_rows, str(tmp_path))
        with open(path) as fh:
            lines = fh.read().strip().splitlines()
        assert lines[0].startswith("policy,rate_per_s,mean_response_us")
        assert len(lines) == 1 + len(sweep_rows)
        assert lines[1].split(",")[-1] == "1"  # starvation_ok


class TestShapeAndMixFactories:
    def test_make_shape_diurnal(self):
        from repro.dynamic import DiurnalShape
        from repro.experiments.dynamic import make_shape

        shape = make_shape("diurnal", period_s=30.0, amplitude=0.4)
        assert isinstance(shape, DiurnalShape)
        assert shape.period_s == 30.0

    def test_make_shape_flash(self):
        from repro.dynamic import FlashCrowdShape
        from repro.experiments.dynamic import make_shape

        shape = make_shape("flash", at_s=5.0, duration_s=2.0, magnitude=3.0)
        assert isinstance(shape, FlashCrowdShape)

    def test_make_shape_rejects_unknown(self):
        from repro.experiments.dynamic import make_shape

        with pytest.raises(ConfigError):
            make_shape("tidal")
        with pytest.raises(ConfigError):
            make_shape("diurnal", wavelength=3.0)

    def test_make_mix_families(self):
        from repro.dynamic import BurstyMix, HotspotMix, SequentialMix, ZipfianMix
        from repro.experiments.dynamic import make_mix

        assert isinstance(make_mix("zipfian", exponent=1.2), ZipfianMix)
        assert isinstance(make_mix("hotspot", hot_fraction=0.7), HotspotMix)
        assert isinstance(make_mix("sequential", run_length=3), SequentialMix)
        assert isinstance(make_mix("bursty", mean_run_length=5.0), BurstyMix)

    def test_make_mix_weighted_rejects_params(self):
        from repro.experiments.dynamic import make_mix

        with pytest.raises(ConfigError):
            make_mix("weighted", exponent=1.0)
        with pytest.raises(ConfigError):
            make_mix("nope")


class TestStreamingSweep:
    def test_no_records_sweep_has_quantiles(self):
        rows = run_dynamic_sweep(record_jobs=False, **SWEEP_KW)
        for row in rows:
            assert row.response_p50_us is not None
            assert row.response_p50_us <= row.response_p95_us <= row.response_p99_us

    def test_no_records_matches_records_on_means(self, sweep_rows):
        rows = run_dynamic_sweep(record_jobs=False, **SWEEP_KW)
        by_policy = {r.policy: r for r in rows}
        for ref in sweep_rows:
            row = by_policy[ref.policy]
            assert row.mean_response_us == ref.mean_response_us
            assert row.mean_slowdown == ref.mean_slowdown
            assert row.throughput_jobs_per_s == ref.throughput_jobs_per_s

    def test_no_records_serial_parallel_identical(self):
        serial = run_dynamic_sweep(record_jobs=False, **SWEEP_KW)
        parallel = run_dynamic_sweep(record_jobs=False, jobs=2, **SWEEP_KW)
        assert parallel == serial

    def test_shaped_sweep_runs(self):
        from repro.experiments.dynamic import make_shape

        rows = run_dynamic_sweep(
            shapes=[make_shape("diurnal", period_s=10.0, amplitude=0.5)],
            policies=["linux"],
            **SWEEP_KW,
        )
        assert rows[0].summaries[0].n_completed == 6

    def test_mix_sweep_runs(self):
        from repro.experiments.dynamic import make_mix

        rows = run_dynamic_sweep(
            mix=make_mix("zipfian", work_scale=0.05, exponent=1.5),
            policies=["linux"],
            **SWEEP_KW,
        )
        assert rows[0].summaries[0].n_completed == 6

    def test_format_quantiles_flag(self, sweep_rows):
        plain = format_dynamic(sweep_rows)
        with_q = format_dynamic(sweep_rows, quantiles=True)
        assert "p95" not in plain
        assert "p50" in with_q and "p95" in with_q and "p99" in with_q


class TestCliStreaming:
    BASE = [
        "dynamic",
        "--policy", "linux",
        "--rate", "3.0",
        "--seed", "7",
        "--scale", "0.05",
        "--num-jobs", "5",
        "--replications", "1",
    ]

    def test_quantiles_flag(self, capsys):
        from repro.cli import main

        assert main(self.BASE + ["--quantiles"]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p99" in out

    def test_no_records_flag(self, capsys):
        from repro.cli import main

        assert main(self.BASE + ["--no-records", "--quantiles"]) == 0
        assert "DYN-1" in capsys.readouterr().out

    def test_shape_and_mix_flags(self, capsys):
        from repro.cli import main

        code = main(
            self.BASE
            + [
                "--shape", "diurnal:period_s=10,amplitude=0.5",
                "--shape", "flash:at_s=1,duration_s=1,magnitude=2",
                "--mix", "zipfian:exponent=1.2",
            ]
        )
        assert code == 0
        assert "DYN-1" in capsys.readouterr().out

    def test_bad_shape_spec_rejected(self):
        from repro.cli import main

        with pytest.raises(ConfigError):
            main(self.BASE + ["--shape", "diurnal:period_s"])
        with pytest.raises(ConfigError):
            main(self.BASE + ["--shape", ":period_s=1"])


class TestExportQuantiles:
    def test_quantile_columns_present(self, tmp_path, sweep_rows):
        from repro.experiments.export import export_dynamic

        path = export_dynamic(sweep_rows, str(tmp_path))
        with open(path) as fh:
            header, first = fh.read().strip().splitlines()[:2]
        cols = header.split(",")
        i = cols.index("response_p50_us")
        assert cols[i : i + 3] == [
            "response_p50_us",
            "response_p95_us",
            "response_p99_us",
        ]
        assert cols[-1] == "starvation_ok"
        # Records-on sweeps populate exact quantiles.
        assert first.split(",")[i] != ""
