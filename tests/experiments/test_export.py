"""CSV export tests."""

import os

import pytest

from repro.experiments.export import export_all


class TestExportAll:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("csv"))
        paths = export_all(directory, work_scale=0.05)
        return directory, paths

    def test_all_files_written(self, exported):
        directory, paths = exported
        names = {os.path.basename(p) for p in paths}
        assert names == {
            "calibration.csv",
            "fig1a.csv",
            "fig1b.csv",
            "fig2a.csv",
            "fig2b.csv",
            "fig2c.csv",
            "table1.csv",
            "dynamic.csv",
            "faults.csv",
        }

    def test_csv_headers_and_rows(self, exported):
        directory, _ = exported
        with open(os.path.join(directory, "fig1b.csv")) as fh:
            lines = fh.read().strip().splitlines()
        assert lines[0] == "app,slowdown_x2,slowdown_+BBMA,slowdown_+nBBMA"
        assert len(lines) == 12  # header + 11 applications

    def test_fig2_columns(self, exported):
        directory, _ = exported
        with open(os.path.join(directory, "fig2a.csv")) as fh:
            header = fh.readline().strip().split(",")
        assert "linux_turnaround_us" in header
        assert "quanta-window_improvement_pct" in header

    def test_calibration_includes_paper_column(self, exported):
        directory, _ = exported
        with open(os.path.join(directory, "calibration.csv")) as fh:
            content = fh.read()
        assert "stream_txus,29.5" in content
