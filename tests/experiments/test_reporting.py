"""Reporting helper tests."""

import pytest

from repro.experiments.reporting import bar, format_csv, format_table


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(["app", "x"], [["CG", 1.5]])
        lines = out.splitlines()
        assert lines[0].startswith("app")
        assert "CG" in lines[2]
        assert "1.50" in lines[2]

    def test_title(self):
        out = format_table(["a"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_column_alignment_width(self):
        out = format_table(["name", "value"], [["verylongname", 1.0], ["x", 10.0]])
        lines = out.splitlines()
        # all rows equal width
        assert len({len(l) for l in lines}) == 1

    def test_custom_float_format(self):
        out = format_table(["v"], [[1.23456]], float_fmt="{:.4f}")
        assert "1.2346" in out


class TestFormatCsv:
    def test_render(self):
        out = format_csv(["a", "b"], [["x", 1.5], ["y", 2.0]])
        assert out.splitlines()[0] == "a,b"
        assert out.splitlines()[1] == "x,1.5000"


class TestBar:
    def test_full_and_empty(self):
        assert bar(10.0, 10.0, width=10) == "#" * 10
        assert bar(0.0, 10.0, width=10) == " " * 10

    def test_half(self):
        assert bar(5.0, 10.0, width=10) == "#####     "

    def test_clamps_overflow(self):
        assert bar(20.0, 10.0, width=10) == "#" * 10

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            bar(1.0, 0.0)
