"""Figure 1 harness tests (small scale, qualitative shapes)."""

import pytest

from repro.experiments.fig1 import FIG1_CONFIGS, format_fig1a, format_fig1b, run_fig1

# One shared small-scale run for all shape assertions (session-scoped for speed).


@pytest.fixture(scope="module")
def rows():
    return run_fig1(work_scale=0.08, apps=["Radiosity", "Barnes", "SP", "CG"])


class TestStructure:
    def test_row_per_app(self, rows):
        assert [r.name for r in rows] == ["Radiosity", "Barnes", "SP", "CG"]

    def test_all_configs_present(self, rows):
        for row in rows:
            assert set(row.rates_txus) == set(FIG1_CONFIGS)
            assert set(row.slowdowns) == {"x2", "+BBMA", "+nBBMA"}

    def test_unknown_config_rejected(self):
        from repro.experiments.fig1 import _config_spec
        from repro.config import MachineConfig

        with pytest.raises(ValueError):
            _config_spec("nope", None, MachineConfig(), 0)


class TestFig1aShapes:
    def test_solo_rates_increasing(self, rows):
        solo = [r.rates_txus["solo"] for r in rows]
        assert solo == sorted(solo)

    def test_bbma_config_saturates(self, rows):
        for row in rows:
            assert row.rates_txus["+BBMA"] == pytest.approx(29.5, rel=0.05)

    def test_nbbma_config_matches_solo(self, rows):
        for row in rows:
            assert row.rates_txus["+nBBMA"] == pytest.approx(
                row.rates_txus["solo"], rel=0.1, abs=0.2
            )

    def test_x2_roughly_doubles_below_saturation(self, rows):
        low = rows[0]  # Radiosity
        assert low.rates_txus["x2"] == pytest.approx(2 * low.rates_txus["solo"], rel=0.15)


class TestFig1bShapes:
    def test_nbbma_harmless(self, rows):
        for row in rows:
            assert row.slowdowns["+nBBMA"] == pytest.approx(1.0, abs=0.05)

    def test_bbma_hurts_more_with_demand(self, rows):
        s = {r.name: r.slowdowns["+BBMA"] for r in rows}
        assert s["Radiosity"] < s["Barnes"] < s["SP"] < s["CG"]

    def test_memory_intensive_suffer_heavily_under_bbma(self, rows):
        assert rows[-1].slowdowns["+BBMA"] > 1.7  # CG: ~2x (paper: 2-3x)

    def test_low_demand_mild_under_bbma(self, rows):
        assert rows[0].slowdowns["+BBMA"] < 1.2  # Radiosity: a few percent

    def test_x2_saturation_for_high_demand(self, rows):
        assert rows[-1].slowdowns["x2"] > 1.35  # CG pair: paper 41-61%

    def test_x2_harmless_for_low_demand(self, rows):
        assert rows[0].slowdowns["x2"] < 1.1


class TestFormatting:
    def test_fig1a_renders(self, rows):
        out = format_fig1a(rows)
        assert "FIG-1A" in out
        assert "CG" in out

    def test_fig1b_renders(self, rows):
        out = format_fig1b(rows)
        assert "FIG-1B" in out
        assert "slowdown" in out
