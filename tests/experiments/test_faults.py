"""FAULT-1 degradation-curve experiment tests."""

import os

import pytest

from repro.core.policies import QuantaWindowPolicy
from repro.errors import ConfigError
from repro.experiments.export import export_faults
from repro.experiments.faults import (
    DEFAULT_INTENSITIES,
    REFERENCE_PLAN,
    FaultRow,
    format_faults,
    run_faults,
)


def _tiny(**kwargs):
    defaults = dict(
        app="CG",
        intensities=(0.0, 1.0),
        policies=[QuantaWindowPolicy()],
        replications=1,
        work_scale=0.05,
        seed=11,
    )
    defaults.update(kwargs)
    return run_faults(**defaults)


class TestRunFaults:

    def test_reference_plan_hits_acceptance_operating_point(self):
        assert REFERENCE_PLAN.signal_drop_prob == pytest.approx(0.10)
        assert REFERENCE_PLAN.pmc_jitter == pytest.approx(0.20)
        assert not REFERENCE_PLAN.any_app_faults
        assert 0.0 in DEFAULT_INTENSITIES and 1.0 in DEFAULT_INTENSITIES

    def test_curve_structure_and_baseline(self):
        rows = _tiny()
        assert len(rows) == 1
        row = rows[0]
        assert isinstance(row, FaultRow)
        assert row.policy == "quanta-window"
        assert [c.intensity for c in row.cells] == [0.0, 1.0]
        assert row.retained(0.0) == pytest.approx(100.0)
        assert row.baseline_turnaround_us > 0
        # The fault-free cell injects nothing and audits clean.
        assert not row.cells[0].stats.any_injected
        assert all(c.audit_ok for c in row.cells)
        # The full-intensity cell actually injected faults.
        assert row.cells[1].stats.any_injected

    def test_unknown_app_and_bad_inputs_rejected(self):
        with pytest.raises(ConfigError):
            _tiny(app="NoSuchApp")
        with pytest.raises(ConfigError):
            _tiny(replications=0)
        with pytest.raises(ConfigError):
            _tiny(intensities=(-0.5, 1.0))

    def test_parallel_matches_serial(self):
        serial = _tiny()
        parallel = _tiny(jobs=2)
        assert serial == parallel


class TestFormatting:

    def test_format_and_export(self, tmp_path):
        rows = _tiny()
        text = format_faults(rows)
        assert "FAULT-1" in text
        assert "quanta-window" in text
        assert "retained" in text
        path = export_faults(rows, str(tmp_path))
        assert os.path.basename(path) == "faults.csv"
        with open(path, encoding="utf-8") as fh:
            header = fh.readline()
        assert "retained_percent" in header
        assert "signal_retries" in header

    def test_format_empty_rejected(self):
        with pytest.raises(ConfigError):
            format_faults([])


class TestCli:

    def test_faults_cli_smoke(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "faults",
                "--scale", "0.05",
                "--intensities", "0,1",
                "--policy", "quanta_window",
                "--replications", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "FAULT-1" in out

    def test_unknown_policy_rejected(self):
        from repro.cli import main

        with pytest.raises(ConfigError):
            main(["faults", "--scale", "0.05", "--policy", "nope"])
