"""Replication statistics tests."""

import pytest

from repro.experiments.replication import (
    Replicated,
    format_replicated_fig2,
    replicate,
    replicate_fig2,
    summarize,
)


class TestSummarize:
    def test_single_value(self):
        r = summarize([5.0])
        assert r.mean == 5.0
        assert r.std == 0.0
        assert r.ci95 == 0.0
        assert r.n == 1

    def test_mean_and_std(self):
        r = summarize([1.0, 3.0])
        assert r.mean == 2.0
        assert r.std == pytest.approx(2.0**0.5)

    def test_ci_shrinks_with_n(self):
        wide = summarize([0.0, 10.0])
        narrow = summarize([0.0, 10.0] * 10)
        assert narrow.ci95 < wide.ci95

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_format(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestReplicate:
    def test_calls_measure_per_seed(self):
        seen = []

        def measure(seed):
            seen.append(seed)
            return float(seed)

        r = replicate(measure, seeds=(3, 5, 9))
        assert seen == [3, 5, 9]
        assert r.mean == pytest.approx((3 + 5 + 9) / 3)

    def test_deterministic_measure_zero_variance(self):
        r = replicate(lambda s: 7.0, seeds=(1, 2, 3))
        assert r.std == 0.0
        assert r.ci95 == 0.0


class TestReplicateFig2:
    @pytest.fixture(scope="class")
    def results(self):
        return replicate_fig2("A", ["CG"], seeds=(1, 2), work_scale=0.08)

    def test_structure(self, results):
        assert set(results) == {"CG"}
        assert set(results["CG"]) == {"latest-quantum", "quanta-window"}
        assert results["CG"]["latest-quantum"].n == 2

    def test_format(self, results):
        out = format_replicated_fig2("A", results)
        assert "FIG-2A replicated" in out
        assert "CG" in out
