"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig2", "--set", "A", "--scale", "0.1"])
        assert args.experiment == "fig2"
        assert args.set_name == "A"
        assert args.scale == 0.1

    def test_apps_csv(self):
        parser = build_parser()
        args = parser.parse_args(["fig1", "--apps", "CG, SP"])
        assert args.apps == "CG, SP"

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3"])


class TestMain:
    def test_fig2_single_app(self, capsys):
        rc = main(["fig2", "--set", "A", "--scale", "0.05", "--apps", "CG"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG-2A" in out
        assert "CG" in out

    def test_fig1_single_app(self, capsys):
        rc = main(["fig1", "--scale", "0.05", "--apps", "Barnes"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG-1A" in out and "FIG-1B" in out

    def test_calibration(self, capsys):
        rc = main(["calibration", "--scale", "0.05"])
        assert rc == 0
        assert "CAL-1" in capsys.readouterr().out

    def test_table1(self, capsys):
        rc = main(["table1", "--scale", "0.05", "--apps", "CG"])
        assert rc == 0
        assert "TAB-1" in capsys.readouterr().out

    def test_smt(self, capsys):
        rc = main(["smt", "--scale", "0.05", "--apps", "CG"])
        assert rc == 0
        assert "EXT-SMT" in capsys.readouterr().out

    def test_io(self, capsys):
        rc = main(["io", "--scale", "0.05"])
        assert rc == 0
        assert "EXT-IO" in capsys.readouterr().out

    def test_kernels(self, capsys):
        rc = main(["kernels", "--scale", "0.05", "--apps", "CG"])
        assert rc == 0
        assert "EXT-K" in capsys.readouterr().out

    def test_validate(self, capsys):
        rc = main(["validate", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VALIDATION" in out
        assert "0 MISS" in out
