"""TAB-1 aggregation tests."""

import pytest

from repro.experiments.fig2 import Fig2Cell, Fig2Row
from repro.experiments.tables import (
    PAPER_TABLE1,
    Table1Row,
    build_table1,
    format_table1,
    overall_average,
)


def _row(name, improvements):
    cells = tuple(
        Fig2Cell(policy=p, turnaround_us=100.0, improvement_percent=v)
        for p, v in improvements.items()
    )
    return Fig2Row(name=name, linux_turnaround_us=200.0, cells=cells)


@pytest.fixture
def results():
    return {
        "A": [
            _row("x", {"latest-quantum": 40.0, "quanta-window": 30.0}),
            _row("y", {"latest-quantum": 20.0, "quanta-window": 40.0}),
        ],
        "B": [
            _row("x", {"latest-quantum": 10.0, "quanta-window": 20.0}),
            _row("y", {"latest-quantum": -10.0, "quanta-window": 0.0}),
        ],
    }


class TestBuild:
    def test_one_row_per_set_policy(self, results):
        rows = build_table1(results)
        assert len(rows) == 4
        keys = {(r.set_name, r.policy) for r in rows}
        assert ("A", "latest-quantum") in keys

    def test_aggregates(self, results):
        rows = build_table1(results)
        a_latest = next(r for r in rows if (r.set_name, r.policy) == ("A", "latest-quantum"))
        assert a_latest.max_percent == 40.0
        assert a_latest.avg_percent == 30.0
        assert a_latest.min_percent == 20.0

    def test_paper_reference_attached(self, results):
        rows = build_table1(results)
        a_latest = next(r for r in rows if (r.set_name, r.policy) == ("A", "latest-quantum"))
        assert a_latest.paper_max_percent == 68.0
        assert a_latest.paper_avg_percent == 41.0

    def test_paper_table_complete(self):
        assert len(PAPER_TABLE1) == 6
        for s in ("A", "B", "C"):
            assert (s, "latest-quantum") in PAPER_TABLE1
            assert (s, "quanta-window") in PAPER_TABLE1


class TestOverall:
    def test_overall_average(self, results):
        rows = build_table1(results)
        assert overall_average(rows) == pytest.approx((30.0 + 35.0 + 0.0 + 10.0) / 4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            overall_average([])


class TestFormat:
    def test_renders(self, results):
        out = format_table1(build_table1(results))
        assert "TAB-1" in out
        assert "paper max" in out
        assert "overall measured avg" in out

    def test_non_paper_policy_dash(self):
        rows = [
            Table1Row(
                set_name="A", policy="ewma", max_percent=1.0, avg_percent=1.0,
                min_percent=1.0, paper_max_percent=None, paper_avg_percent=None,
            )
        ]
        assert "-" in format_table1(rows)
