"""Settle-loop fast path: horizon caching and solve-skip accounting.

While a machine's configuration is unchanged, every internal transition
is a constant absolute instant, so `horizon()` is cached per
configuration and invalidated by any reconfiguration. These tests pin
that contract: the cache must never change *what* the horizon is, only
how often it is recomputed, and the skip/rebuild counters must tell the
two settle paths apart.
"""

import math

import pytest

from repro.config import BusConfig, MachineConfig
from repro.hw.machine import Machine
from repro.sim.engine import Engine


class _FlatDemand:
    """Constant-rate demand (implements the DemandProcess protocol)."""

    def __init__(self, rate: float = 5.0):
        self._rate = rate

    def segment(self, work: float) -> tuple[float, float]:
        return self._rate, math.inf


def _machine_with_thread(rate: float = 5.0, work: float = 1_000.0):
    engine = Engine()
    machine = Machine(MachineConfig(), engine)
    tid = machine.add_thread("t0", _FlatDemand(rate), work_total=work).tid
    machine.dispatch(0, tid)
    return engine, machine, tid


class TestHorizonCache:
    def test_idle_machine_horizon_is_inf(self):
        machine = Machine(MachineConfig(), Engine())
        assert machine.horizon() == math.inf
        assert machine.horizon() == math.inf  # cached inf stays inf

    def test_repeated_queries_return_identical_value(self):
        _, machine, _ = _machine_with_thread()
        first = machine.horizon()
        assert math.isfinite(first)
        for _ in range(5):
            assert machine.horizon() == first

    def test_advance_preserves_absolute_horizon(self):
        # Advancing (no reconfiguration) must not move the transition
        # instant: the cached absolute horizon stays valid and correct.
        _, machine, _ = _machine_with_thread()
        first = machine.horizon()
        machine.advance_to(first / 2)
        assert machine.horizon() == first

    def test_dispatch_invalidates_horizon(self):
        engine, machine, tid = _machine_with_thread()
        h1 = machine.horizon()
        t2 = machine.add_thread("t1", _FlatDemand(30.0), work_total=1_000.0).tid
        machine.dispatch(1, t2)
        h2 = machine.horizon()
        assert h2 != h1  # contention slows t0; completion moves out

    def test_rebuild_debt_invalidates_horizon(self):
        _, machine, tid = _machine_with_thread()
        h1 = machine.horizon()
        machine.add_rebuild_debt(tid, 1_000.0)
        h2 = machine.horizon()
        assert h2 != h1

    def test_cached_horizon_matches_fresh_computation(self):
        # Force a recompute via an idempotent reconfiguration (idle an
        # unused cpu slot) and compare against the cached value.
        _, machine, _ = _machine_with_thread()
        cached = machine.horizon()
        machine.dispatch(1, None)  # no-op placement, but marks dirty
        assert machine.horizon() == cached


class TestSettleCounters:
    def test_solve_skip_on_identical_signature(self):
        _, machine, tid = _machine_with_thread()
        machine.horizon()
        rebuilds = machine.lane_rebuilds
        machine.dispatch(1, None)  # dirty without changing the running set
        machine.horizon()
        assert machine.lane_rebuilds == rebuilds
        assert machine.solve_skips >= 1

    def test_lane_rebuild_on_real_change(self):
        _, machine, _ = _machine_with_thread()
        machine.horizon()
        rebuilds = machine.lane_rebuilds
        t2 = machine.add_thread("t1", _FlatDemand(10.0), work_total=500.0).tid
        machine.dispatch(1, t2)
        machine.horizon()
        assert machine.lane_rebuilds == rebuilds + 1

    def test_settle_calls_count_advances(self):
        _, machine, _ = _machine_with_thread()
        before = machine.settle_calls
        machine.advance_to(1.0)
        machine.advance_to(2.0)
        assert machine.settle_calls == before + 2


def _mode_pair(n_cpus: int = 8, smt_ways: int = 1) -> tuple[Machine, Machine]:
    newton = Machine(
        MachineConfig(
            n_cpus=n_cpus, smt_ways=smt_ways, bus=BusConfig(solver_mode="newton")
        ),
        Engine(),
    )
    vector = Machine(
        MachineConfig(
            n_cpus=n_cpus, smt_ways=smt_ways, bus=BusConfig(solver_mode="vector")
        ),
        Engine(),
    )
    return newton, vector


def _mirror(machines, op):
    """Apply the same operation to both machines, return both results."""
    return [op(m) for m in machines]


class TestVectorSettleParity:
    """Vector-mode settle path: same bits as the scalar reference."""

    def _populate(self, machine: Machine, n: int = 6) -> list[int]:
        tids = []
        for i in range(n):
            st = machine.add_thread(
                f"t{i}", _FlatDemand(8.0 + 3.0 * i), work_total=5_000.0,
                footprint_lines=500.0 * (i + 1),
            )
            machine.dispatch(i, st.tid)
            tids.append(st.tid)
        return tids

    def _assert_same_state(self, newton: Machine, vector: Machine, tids):
        for tid in tids:
            a, b = newton.thread(tid), vector.thread(tid)
            assert b.work_done == a.work_done
            assert b.run_time_us == a.run_time_us
            assert b.rebuild_debt == a.rebuild_debt
        for cpu in range(len(newton.cpus)):
            ca, cb = newton.cache_of(cpu), vector.cache_of(cpu)
            for tid in tids:
                assert cb.resident(tid) == ca.resident(tid)
        assert vector.horizon() == newton.horizon()

    def test_advance_is_bit_identical(self):
        pair = _mode_pair()
        tids_n, tids_v = _mirror(pair, self._populate)
        assert tids_n == tids_v
        for t in (1.0, 7.5, 40.0, 41.25):
            _mirror(pair, lambda m: m.advance_to(t))
        self._assert_same_state(*pair, tids_n)

    def test_reconfiguration_sequence_is_bit_identical(self):
        pair = _mode_pair()
        tids, _ = _mirror(pair, self._populate)
        _mirror(pair, lambda m: m.advance_to(5.0))
        _mirror(pair, lambda m: m.set_blocked(tids[2], True))
        _mirror(pair, lambda m: m.advance_to(9.0))
        _mirror(pair, lambda m: m.set_blocked(tids[2], False))
        _mirror(pair, lambda m: m.dispatch(2, tids[2]))
        _mirror(pair, lambda m: m.advance_to(30.0))
        self._assert_same_state(*pair, tids)

    def test_dirty_mask_reuses_clean_entries(self):
        newton, vector = _mode_pair()
        self._populate(newton)
        tids = self._populate(vector)
        for m in (newton, vector):
            m.advance_to(2.0)
            # Touch a single thread; the other five lane entries are clean.
            m.add_rebuild_debt(tids[0], 100.0)
            m.advance_to(3.0)
        assert vector.dirty_mask_hits >= 5
        assert newton.dirty_mask_hits == 0

    @pytest.mark.parametrize("smt_ways", [1, 2], ids=["soa", "vector-smt"])
    def test_migration_on_solve_skip_path_accounts_correct_cache(self, smt_ways):
        # Regression: a lone thread's migration leaves the lane signature
        # unchanged (it encodes tids and rates, not CPU ids), so
        # _ensure_solution takes the solve-skip path. The batched advance
        # must still charge the *new* CPU's cache, like the scalar path's
        # live ``st.cpu`` read does. Parametrized over SMT because the
        # two vector skip paths differ: smt_ways=1 runs the SoA store
        # path (lane handles rebound via _bind_lane_handles), smt_ways=2
        # runs the lane-object path (_adv_caches refresh) — both must
        # re-read placement on a solve skip.
        pair = _mode_pair(n_cpus=2, smt_ways=smt_ways)
        newton, vector = pair
        assert (vector.soa_store is not None) == (smt_ways == 1)
        # With SMT, logical CPUs 0..smt_ways-1 share core 0's cache; use
        # the first logical CPU of each core so the caches are distinct
        # (one thread per core also keeps the SMT factor at 1.0).
        cpu_a, cpu_b = 0, smt_ways
        bg_n, bg_v = _mirror(
            pair,
            lambda m: m.add_thread(
                "warm", _FlatDemand(20.0), work_total=10_000.0,
                footprint_lines=4_000.0,
            ).tid,
        )
        assert bg_n == bg_v
        # Fill core B's cache with the warm thread's working set, idle it.
        _mirror(pair, lambda m: m.dispatch(cpu_b, bg_n))
        _mirror(pair, lambda m: m.advance_to(150.0))
        _mirror(pair, lambda m: m.dispatch(cpu_b, None))
        # A zero-footprint streamer (no rebuild debt anywhere, so its
        # lane entry is identical on any CPU) starts on core A ...
        mover_n, mover_v = _mirror(
            pair,
            lambda m: m.add_thread(
                "stream", _FlatDemand(25.0), work_total=20_000.0,
                footprint_lines=0.0,
            ).tid,
        )
        _mirror(pair, lambda m: m.dispatch(cpu_a, mover_n))
        _mirror(pair, lambda m: m.advance_to(200.0))
        # ... then migrates to core B and keeps streaming: its inflow
        # must now evict the warm thread's lines from core B's cache.
        _mirror(pair, lambda m: m.dispatch(cpu_b, mover_n))
        _mirror(pair, lambda m: m.advance_to(400.0))
        assert vector.solve_skips >= 1
        ref = newton.cache_of(cpu_b).resident(bg_n)
        assert ref < newton.cache_of(cpu_a).total_lines  # eviction happened
        assert vector.cache_of(cpu_b).resident(bg_v) == ref
        for tid in (bg_n, mover_n):
            assert (
                vector.thread(tid).work_done == newton.thread(tid).work_done
            )
