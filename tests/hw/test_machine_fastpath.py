"""Settle-loop fast path: horizon caching and solve-skip accounting.

While a machine's configuration is unchanged, every internal transition
is a constant absolute instant, so `horizon()` is cached per
configuration and invalidated by any reconfiguration. These tests pin
that contract: the cache must never change *what* the horizon is, only
how often it is recomputed, and the skip/rebuild counters must tell the
two settle paths apart.
"""

import math

from repro.config import MachineConfig
from repro.hw.machine import Machine
from repro.sim.engine import Engine


class _FlatDemand:
    """Constant-rate demand (implements the DemandProcess protocol)."""

    def __init__(self, rate: float = 5.0):
        self._rate = rate

    def segment(self, work: float) -> tuple[float, float]:
        return self._rate, math.inf


def _machine_with_thread(rate: float = 5.0, work: float = 1_000.0):
    engine = Engine()
    machine = Machine(MachineConfig(), engine)
    tid = machine.add_thread("t0", _FlatDemand(rate), work_total=work).tid
    machine.dispatch(0, tid)
    return engine, machine, tid


class TestHorizonCache:
    def test_idle_machine_horizon_is_inf(self):
        machine = Machine(MachineConfig(), Engine())
        assert machine.horizon() == math.inf
        assert machine.horizon() == math.inf  # cached inf stays inf

    def test_repeated_queries_return_identical_value(self):
        _, machine, _ = _machine_with_thread()
        first = machine.horizon()
        assert math.isfinite(first)
        for _ in range(5):
            assert machine.horizon() == first

    def test_advance_preserves_absolute_horizon(self):
        # Advancing (no reconfiguration) must not move the transition
        # instant: the cached absolute horizon stays valid and correct.
        _, machine, _ = _machine_with_thread()
        first = machine.horizon()
        machine.advance_to(first / 2)
        assert machine.horizon() == first

    def test_dispatch_invalidates_horizon(self):
        engine, machine, tid = _machine_with_thread()
        h1 = machine.horizon()
        t2 = machine.add_thread("t1", _FlatDemand(30.0), work_total=1_000.0).tid
        machine.dispatch(1, t2)
        h2 = machine.horizon()
        assert h2 != h1  # contention slows t0; completion moves out

    def test_rebuild_debt_invalidates_horizon(self):
        _, machine, tid = _machine_with_thread()
        h1 = machine.horizon()
        machine.add_rebuild_debt(tid, 1_000.0)
        h2 = machine.horizon()
        assert h2 != h1

    def test_cached_horizon_matches_fresh_computation(self):
        # Force a recompute via an idempotent reconfiguration (idle an
        # unused cpu slot) and compare against the cached value.
        _, machine, _ = _machine_with_thread()
        cached = machine.horizon()
        machine.dispatch(1, None)  # no-op placement, but marks dirty
        assert machine.horizon() == cached


class TestSettleCounters:
    def test_solve_skip_on_identical_signature(self):
        _, machine, tid = _machine_with_thread()
        machine.horizon()
        rebuilds = machine.lane_rebuilds
        machine.dispatch(1, None)  # dirty without changing the running set
        machine.horizon()
        assert machine.lane_rebuilds == rebuilds
        assert machine.solve_skips >= 1

    def test_lane_rebuild_on_real_change(self):
        _, machine, _ = _machine_with_thread()
        machine.horizon()
        rebuilds = machine.lane_rebuilds
        t2 = machine.add_thread("t1", _FlatDemand(10.0), work_total=500.0).tid
        machine.dispatch(1, t2)
        machine.horizon()
        assert machine.lane_rebuilds == rebuilds + 1

    def test_settle_calls_count_advances(self):
        _, machine, _ = _machine_with_thread()
        before = machine.settle_calls
        machine.advance_to(1.0)
        machine.advance_to(2.0)
        assert machine.settle_calls == before + 2
