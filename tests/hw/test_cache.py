"""Unit tests for the L2 warmth model."""

import pytest

from repro.config import CacheConfig
from repro.hw.cache import CacheL2


@pytest.fixture
def l2() -> CacheL2:
    return CacheL2(CacheConfig())  # 4096 lines


class TestWarmth:
    def test_cold_start(self, l2):
        assert l2.warmth(1, 1000) == 0.0

    def test_grows_with_inflow(self, l2):
        l2.account_run(1, footprint_lines=1000, inflow_lines=250)
        assert l2.warmth(1, 1000) == pytest.approx(0.25)

    def test_saturates_at_one(self, l2):
        l2.account_run(1, footprint_lines=1000, inflow_lines=5000)
        assert l2.warmth(1, 1000) == 1.0

    def test_zero_footprint_always_warm(self, l2):
        assert l2.warmth(1, 0) == 1.0

    def test_footprint_capped_at_cache_size(self, l2):
        # A streaming working set (8192 > 4096) can be at most cache-size warm.
        l2.account_run(1, footprint_lines=8192, inflow_lines=100_000)
        assert l2.resident(1) <= l2.total_lines
        assert l2.warmth(1, 8192) == pytest.approx(1.0)


class TestEviction:
    def test_full_cache_evicts_others(self, l2):
        l2.account_run(1, footprint_lines=4096, inflow_lines=4096)  # fills cache
        l2.account_run(2, footprint_lines=2048, inflow_lines=2048)
        assert l2.warmth(2, 2048) == pytest.approx(1.0)
        assert l2.warmth(1, 4096) < 1.0

    def test_streaming_pollutes_even_without_growth(self, l2):
        l2.account_run(1, footprint_lines=2048, inflow_lines=2048)
        # Thread 2 streams: huge inflow, footprint beyond cache
        l2.account_run(2, footprint_lines=8192, inflow_lines=4096)
        l2.account_run(2, footprint_lines=8192, inflow_lines=50_000)
        assert l2.warmth(1, 2048) < 0.2

    def test_low_inflow_preserves_others(self, l2):
        l2.account_run(1, footprint_lines=2048, inflow_lines=2048)
        l2.account_run(2, footprint_lines=2048, inflow_lines=10.0)  # nBBMA-like
        assert l2.warmth(1, 2048) > 0.95

    def test_occupancy_bounded(self, l2):
        for tid in range(5):
            l2.account_run(tid, footprint_lines=3000, inflow_lines=3000)
        assert l2.occupancy() <= l2.total_lines * (1 + 1e-9)

    def test_zero_inflow_noop(self, l2):
        l2.account_run(1, footprint_lines=100, inflow_lines=0.0)
        assert l2.resident(1) == 0.0

    def test_forget(self, l2):
        l2.account_run(1, footprint_lines=100, inflow_lines=100)
        l2.forget(1)
        assert l2.resident(1) == 0.0
        assert l2.occupancy() == 0.0
