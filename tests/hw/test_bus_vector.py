"""Vectorized solver: bit-identity with newton, plus lane-array plumbing.

``solver_mode="vector"`` keeps the guarded-Newton control flow but runs
the per-lane kernels as numpy array expressions. Unlike the newton mode
(which only has to agree with bisection to solver tolerance), the vector
mode's contract is *bit-identity with newton*: every elementwise numpy op
rounds exactly like the scalar float op, and the reductions are strict
left-to-right ``cumsum`` folds — so equality below is ``==``, never
``approx``. The module also covers the ``batched_lanes`` counter, the
sub-:data:`_VECTOR_MIN_LANES` scalar fallback, the ``speeds_arr`` /
``actuals_arr`` plumbing used by the machine's settle path, and the
shared-cache exclusion the mode inherits from newton.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BusConfig
from repro.hw.bus import (
    _VECTOR_MIN_LANES,
    BusModel,
    clear_shared_solve_cache,
    install_shared_solve_cache,
    shared_solve_cache,
)

_rates = st.floats(min_value=0.0, max_value=60.0, allow_nan=False, allow_infinity=False)
_request_lists = st.lists(_rates, min_size=1, max_size=10)
_wide_request_lists = st.lists(_rates, min_size=_VECTOR_MIN_LANES, max_size=16)


def _pair(**kwargs) -> tuple[BusModel, BusModel]:
    newton = BusModel(BusConfig(solver_mode="newton", **kwargs))
    vector = BusModel(BusConfig(solver_mode="vector", **kwargs))
    return newton, vector


class TestSolverModeConfig:
    def test_vector_accepted(self):
        assert BusConfig(solver_mode="vector").solver_mode == "vector"

    def test_vector_counter_starts_at_zero(self):
        assert BusModel(BusConfig(solver_mode="vector")).batched_lanes == 0


@given(_request_lists)
@settings(max_examples=300, deadline=None)
def test_vector_solution_is_bit_identical_to_newton(rates):
    newton, vector = _pair()
    sol_n = newton.solve([newton.request_for_rate(r) for r in rates])
    sol_v = vector.solve([vector.request_for_rate(r) for r in rates])
    # Full structural equality — saturation flag, latency, utilisation,
    # totals and every grant — at the last ulp, not to tolerance.
    assert sol_v == sol_n
    assert sol_v.latency_us == sol_n.latency_us
    assert sol_v.total_txus == sol_n.total_txus
    for gn, gv in zip(sol_n.grants, sol_v.grants):
        assert gv.speed == gn.speed
        assert gv.actual_txus == gn.actual_txus


@given(st.lists(_request_lists, min_size=2, max_size=6))
@settings(max_examples=100, deadline=None)
def test_vector_bit_identical_across_drifting_sequences(rate_lists):
    # The vector mode shares newton's warm-start slot; identity must hold
    # through a whole solve *sequence*, where each root seeds the next.
    newton, vector = _pair(solve_cache_size=0)
    for rates in rate_lists:
        sol_n = newton.solve([newton.request_for_rate(r) for r in rates])
        sol_v = vector.solve([vector.request_for_rate(r) for r in rates])
        assert sol_v == sol_n


@given(_request_lists)
@settings(max_examples=150, deadline=None)
def test_vector_equilibrium_matches_bisect_within_tolerance(rates):
    bisect = BusModel(BusConfig(solver_mode="bisect"))
    vector = BusModel(BusConfig(solver_mode="vector"))
    sol_b = bisect.solve([bisect.request_for_rate(r) for r in rates])
    sol_v = vector.solve([vector.request_for_rate(r) for r in rates])
    tol = bisect.config.fixed_point_tol * bisect.lam0
    assert sol_v.saturated == sol_b.saturated
    assert sol_v.latency_us == pytest.approx(sol_b.latency_us, abs=2 * tol, rel=1e-6)
    assert sol_v.total_txus == pytest.approx(sol_b.total_txus, rel=1e-6, abs=1e-9)


class TestBatchedLanesCounter:
    def test_wide_solve_counts_every_lane(self):
        vector = BusModel(BusConfig(solver_mode="vector", solve_cache_size=0))
        rates = [30.0 + i for i in range(6)]
        vector.solve([vector.request_for_rate(r) for r in rates])
        assert vector.batched_lanes == 6
        vector.solve([vector.request_for_rate(r + 0.5) for r in rates])
        assert vector.batched_lanes == 12

    def test_narrow_solve_falls_back_to_scalar(self):
        vector = BusModel(BusConfig(solver_mode="vector", solve_cache_size=0))
        rates = [30.0 + i for i in range(_VECTOR_MIN_LANES - 1)]
        vector.solve([vector.request_for_rate(r) for r in rates])
        assert vector.batched_lanes == 0

    def test_scalar_modes_never_batch(self):
        newton = BusModel(BusConfig(solver_mode="newton", solve_cache_size=0))
        rates = [30.0 + i for i in range(8)]
        newton.solve([newton.request_for_rate(r) for r in rates])
        assert newton.batched_lanes == 0

    @given(st.lists(_rates, min_size=1, max_size=_VECTOR_MIN_LANES - 1))
    @settings(max_examples=100, deadline=None)
    def test_narrow_fallback_is_bit_identical_too(self, rates):
        newton, vector = _pair(solve_cache_size=0)
        sol_n = newton.solve([newton.request_for_rate(r) for r in rates])
        sol_v = vector.solve([vector.request_for_rate(r) for r in rates])
        assert sol_v == sol_n
        assert vector.batched_lanes == 0


class TestLaneArrays:
    """``speeds_arr``/``actuals_arr``: the machine's batched-settle feed."""

    def test_wide_vector_solve_exposes_arrays_matching_grants(self):
        vector = BusModel(BusConfig(solver_mode="vector", solve_cache_size=0))
        rates = [28.0, 31.0, 34.0, 37.0, 40.0]
        sol = vector.solve([vector.request_for_rate(r) for r in rates])
        assert sol.speeds_arr is not None and sol.actuals_arr is not None
        # Same bits, request order — the machine folds these straight
        # into its lane arrays without touching the grant tuples.
        assert sol.speeds_arr.tolist() == [g.speed for g in sol.grants]
        assert sol.actuals_arr.tolist() == [g.actual_txus for g in sol.grants]

    def test_scalar_solve_has_no_arrays(self):
        newton = BusModel(BusConfig(solver_mode="newton", solve_cache_size=0))
        sol = newton.solve([newton.request_for_rate(r) for r in (30.0, 35.0, 40.0, 45.0)])
        assert sol.speeds_arr is None and sol.actuals_arr is None

    def test_reordered_memo_replay_drops_arrays(self):
        # A permuted replay reorders the grant tuple; the stored arrays
        # would still be in first-solve order, so they must not survive.
        vector = BusModel(BusConfig(solver_mode="vector"))
        rates = [28.0, 31.0, 34.0, 37.0]
        first = vector.solve([vector.request_for_rate(r) for r in rates])
        assert first.speeds_arr is not None
        replay = vector.solve(
            [vector.request_for_rate(r) for r in reversed(rates)]
        )
        assert vector.cache_hits >= 1
        assert replay.speeds_arr is None and replay.actuals_arr is None
        assert replay.grants == tuple(reversed(first.grants))

    def test_arrays_do_not_affect_solution_equality(self):
        vector = BusModel(BusConfig(solver_mode="vector", solve_cache_size=0))
        newton = BusModel(BusConfig(solver_mode="newton", solve_cache_size=0))
        rates = [28.0, 31.0, 34.0, 37.0]
        sol_v = vector.solve([vector.request_for_rate(r) for r in rates])
        sol_n = newton.solve([newton.request_for_rate(r) for r in rates])
        assert sol_v == sol_n  # despite one carrying arrays, one not


class TestSharedCacheExclusion:
    def setup_method(self):
        clear_shared_solve_cache()

    def teardown_method(self):
        clear_shared_solve_cache()

    def test_vector_mode_skips_shared_cache(self):
        # Like newton, the vector mode's last-ulp output depends on the
        # model's private warm-start history; replaying across models
        # would break the per-model bit-identity contract.
        install_shared_solve_cache()
        rates = [31.0, 33.0, 35.0, 37.0]
        a = BusModel(BusConfig(solver_mode="vector"))
        a.solve([a.request_for_rate(r) for r in rates])
        b = BusModel(BusConfig(solver_mode="vector"))
        b.solve([b.request_for_rate(r) for r in rates])
        assert b.shared_hits == 0
        assert shared_solve_cache().stores == 0
