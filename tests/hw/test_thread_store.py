"""Struct-of-arrays thread store: view round-trips and SoA bit-identity.

Three layers of guarantees pinned here:

1. :class:`repro.hw.store.ThreadStore` mechanics — append defaults,
   growth preserving rows, ``row_dict`` round-trips.
2. :class:`repro.hw.machine.ThreadState` is a *view*: attribute writes
   land in the store arrays and direct array writes are visible through
   the attributes (policies, audit, faults and the batched machine loops
   share one source of truth).
3. The SoA hot path (``solver_mode="vector"``, no SMT) is bit-identical
   to the scalar newton reference under randomized operation sequences —
   drifting warm starts (rebuild-debt churn), migrations, blocking,
   stalls and mid-run kills — and under a full faulted simulation.
   The machine's incremental ready set must always equal the brute-force
   recomputation in every mode (the kernel pick scan trusts it).
"""

import math

import numpy as np
import pytest

from repro.config import BusConfig, MachineConfig
from repro.hw.machine import Machine
from repro.hw.store import BOOL_FIELDS, FLOAT_FIELDS, INT_FIELDS, ThreadStore
from repro.sim.engine import Engine


class _FlatDemand:
    def __init__(self, rate: float = 5.0):
        self._rate = rate

    def segment(self, work: float) -> tuple[float, float]:
        return self._rate, math.inf


class _SteppedDemand:
    """Piecewise demand so SoA runs exercise the segment cache."""

    def __init__(self, rates, step_work: float):
        self._rates = rates
        self._step = step_work

    def segment(self, work: float) -> tuple[float, float]:
        k = int(work // self._step)
        if k >= len(self._rates) - 1:
            return self._rates[-1], math.inf
        return self._rates[k], (k + 1) * self._step


class TestThreadStore:
    def test_add_returns_consecutive_rows_with_defaults(self):
        store = ThreadStore(capacity=2)
        assert store.add() == 0
        assert store.add() == 1
        row = store.row_dict(1)
        assert row["work_done"] == 0.0
        assert row["next_io_at_work"] == math.inf
        assert row["seg_end"] == -math.inf  # stale sentinel
        assert row["cpu"] == -1 and row["last_cpu"] == -1
        assert not any(row[name] for name in BOOL_FIELDS)

    def test_growth_preserves_existing_rows(self):
        store = ThreadStore(capacity=2)
        store.add()
        store.work_done[0] = 123.5
        store.cpu[0] = 3
        store.blocked[0] = True
        for _ in range(10):  # forces several doublings
            store.add()
        assert store.n == 11
        assert store.work_done[0] == 123.5
        assert store.cpu[0] == 3
        assert bool(store.blocked[0])
        assert store.cpu[10] == -1

    def test_row_dict_bounds(self):
        store = ThreadStore()
        with pytest.raises(IndexError):
            store.row_dict(0)

    def test_field_groups_cover_slots(self):
        store = ThreadStore()
        for name in FLOAT_FIELDS + INT_FIELDS + BOOL_FIELDS:
            assert isinstance(getattr(store, name), np.ndarray)


class TestThreadStateView:
    def _machine(self):
        machine = Machine(MachineConfig(), Engine())
        state = machine.add_thread(
            "t", _FlatDemand(), work_total=1_000.0, footprint_lines=64.0
        )
        return machine, state

    def test_attribute_writes_visible_in_arrays(self):
        machine, st = self._machine()
        row = st.tid - 1
        st.work_done = 42.5
        st.rebuild_debt = 7.0
        st.blocked = True
        st.cpu = 2
        st.last_cpu = None
        s = machine.store
        assert s.work_done[row] == 42.5
        assert s.rebuild_debt[row] == 7.0
        assert bool(s.blocked[row])
        assert s.cpu[row] == 2
        assert s.last_cpu[row] == -1

    def test_array_writes_visible_through_attributes(self):
        machine, st = self._machine()
        row = st.tid - 1
        s = machine.store
        s.work_done[row] = 11.25
        s.cpu[row] = -1
        s.in_io[row] = True
        s.next_io_at_work[row] = 500.0
        assert st.work_done == 11.25
        assert st.cpu is None
        assert st.in_io is True
        assert st.next_io_at_work == 500.0
        assert not st.runnable  # derived property reads the same arrays

    def test_properties_return_plain_python_scalars(self):
        machine, st = self._machine()
        machine.dispatch(0, st.tid)
        assert type(st.work_done) is float
        assert type(st.cpu) is int
        assert type(st.finished) is bool
        assert st.remaining_work == 1_000.0

    def test_row_matches_tid_assignment(self):
        machine = Machine(MachineConfig(), Engine())
        for _ in range(5):
            st = machine.add_thread("x", _FlatDemand(), work_total=10.0)
            assert machine.store.row_dict(st.tid - 1)["work_total"] == 10.0


def _brute_force_ready(machine: Machine) -> list[int]:
    return sorted(
        t.tid for t in machine.threads() if t.runnable and t.cpu is None
    )


def _mode_machine(mode: str, n_cpus: int = 4) -> Machine:
    return Machine(
        MachineConfig(n_cpus=n_cpus, bus=BusConfig(solver_mode=mode)), Engine()
    )


def _apply_random_ops(machines, seed: int, steps: int = 60, n_cpus: int = 4):
    """Drive identical randomized lifecycles on every machine in ``machines``.

    Exercises dispatch/migration, block/unblock, rebuild-debt drift,
    stalls, kills and settle intervals clipped to the horizon — the full
    surface the SoA path must keep bit-identical to the scalar reference.
    """
    rng = np.random.default_rng(seed)
    n_threads = int(rng.integers(3, 8))
    for i in range(n_threads):
        rate = float(rng.uniform(2.0, 30.0))
        work = float(rng.uniform(500.0, 3_000.0))
        fp = float(rng.uniform(0.0, 2_000.0))
        sens = float(rng.uniform(0.0, 1.0))
        demand = _SteppedDemand(
            [rate, rate * 0.5, rate * 1.5], step_work=work / 4.0
        )
        for m in machines:
            m.add_thread(
                f"t{i}", demand, work_total=work, footprint_lines=fp,
                migration_sensitivity=sens,
            )
    for _ in range(steps):
        ref = machines[0]
        op = int(rng.integers(0, 5))
        if op == 0:  # (re)dispatch a runnable thread somewhere (may migrate)
            cands = [
                t.tid for t in ref.runnable_threads() if not t.finished
            ]
            if cands:
                tid = cands[int(rng.integers(0, len(cands)))]
                cpu = int(rng.integers(0, n_cpus))
                for m in machines:
                    if m.cpus[cpu].tid != tid:
                        m.dispatch(cpu, tid)
        elif op == 1:  # toggle blocked on a random unfinished thread
            cands = [t.tid for t in ref.threads() if not t.finished]
            if cands:
                tid = cands[int(rng.integers(0, len(cands)))]
                flag = not ref.thread(tid).blocked
                for m in machines:
                    m.set_blocked(tid, flag)
        elif op == 2:  # warm-start drift: pile on rebuild debt
            cands = [t.tid for t in ref.threads() if not t.finished]
            if cands:
                tid = cands[int(rng.integers(0, len(cands)))]
                lines = float(rng.uniform(10.0, 500.0))
                for m in machines:
                    m.add_rebuild_debt(tid, lines)
        elif op == 3:  # stall/resume (keeps its CPU, zero progress)
            cands = [t.tid for t in ref.threads() if not t.finished]
            if cands:
                tid = cands[int(rng.integers(0, len(cands)))]
                flag = not ref.thread(tid).stalled
                for m in machines:
                    m.set_stalled(tid, flag)
        elif op == 4 and rng.random() < 0.25:  # rare mid-run kill
            cands = [t.tid for t in ref.threads() if not t.finished]
            if cands:
                tid = cands[int(rng.integers(0, len(cands)))]
                for m in machines:
                    m.kill_thread(tid)
        # settle forward, never past the earliest internal transition.
        # Poll horizon() on every machine: the engine queries it each loop
        # in every mode, and the cached *absolute* horizon is bit-stable
        # only when machines recompute it at the same instants.
        horizons = [m.horizon() for m in machines]
        horizon = horizons[0]
        dt = float(rng.uniform(0.5, 40.0))
        target = ref.now + dt
        if math.isfinite(horizon):
            target = min(target, horizon)
        for m in machines:
            m.advance_to(target)
        yield target


class TestReadySetInvariant:
    @pytest.mark.parametrize("mode", ["newton", "vector"])
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_ready_set_matches_brute_force(self, mode, seed):
        machine = _mode_machine(mode)
        for _ in _apply_random_ops([machine], seed):
            assert machine.ready_tids() == _brute_force_ready(machine)
            runnable = machine.runnable_threads()
            rows = machine.runnable_rows()
            assert [t.tid - 1 for t in runnable] == rows.tolist()

    def test_occupancy_mirror_tracks_cpus(self):
        machine = _mode_machine("vector")
        for _ in _apply_random_ops([machine], seed=3):
            for cpu in machine.cpus:
                want = -1 if cpu.tid is None else cpu.tid
                assert machine.cpu_tids[cpu.cpu_id] == want


#: Store columns carrying physics (compared bit-exact across solver
#: modes). seg_rate/seg_end are the SoA path's private segment cache —
#: the scalar reference never populates them.
_PHYSICS_FLOATS = (
    "work_done", "work_total", "rebuild_debt", "next_io_at_work",
    "run_time_us", "footprint_lines",
)


def _assert_stores_identical(a: Machine, b: Machine):
    sa, sb = a.store, b.store
    assert sa.n == sb.n
    n = sa.n
    for name in _PHYSICS_FLOATS + INT_FIELDS + BOOL_FIELDS:
        ca, cb = getattr(sa, name)[:n], getattr(sb, name)[:n]
        assert np.array_equal(ca, cb), f"store column {name} diverged"
    for tid in range(1, n + 1):
        assert a.counters.read(tid) == b.counters.read(tid)


class TestScalarVsSoAPropertyIdentity:
    """Randomized lifecycle sequences: newton and SoA-vector, same bits."""

    @pytest.mark.parametrize("seed", [1, 5, 12, 31, 48])
    def test_random_op_sequences_bit_identical(self, seed):
        newton = _mode_machine("newton")
        vector = _mode_machine("vector")
        assert vector.soa_store is not None  # SoA path armed
        assert newton.soa_store is None
        for _ in _apply_random_ops([newton, vector], seed):
            assert vector.horizon() == newton.horizon()
            _assert_stores_identical(newton, vector)
        assert vector.bus_total_txus == newton.bus_total_txus

    def test_thread_speed_matches_scalar_lookup(self):
        newton = _mode_machine("newton")
        vector = _mode_machine("vector")
        for _ in _apply_random_ops([newton, vector], seed=9, steps=20):
            for t in newton.threads():
                assert vector.thread_speed(t.tid) == newton.thread_speed(t.tid)


class TestFaultedRunIdentity:
    def test_faulted_simulation_bit_identical_newton_vs_vector(self):
        # Faults add mid-quantum app crashes (immediate disconnect), hangs
        # (stalls) and PMC/signal perturbations — the SoA path must track
        # the scalar reference through all of them.
        from repro.core.policies import QuantaWindowPolicy
        from repro.experiments.base import SimulationSpec, run_simulation
        from repro.faults import FaultPlan
        from repro.workloads.microbench import bbma_spec, nbbma_spec
        from repro.workloads.suites import PAPER_APPS

        plan = FaultPlan(
            pmc_jitter=0.2, signal_drop_prob=0.1, crash_prob=0.3,
            hang_prob=0.2, stall_prob=0.3,
        )

        def spec(mode):
            apps = [PAPER_APPS[n].scaled(0.05) for n in ("CG", "Barnes")]
            return SimulationSpec(
                targets=[apps[0], apps[0], apps[1]],
                background=[bbma_spec(), nbbma_spec()],
                scheduler=QuantaWindowPolicy(),
                machine=MachineConfig(
                    n_cpus=8,
                    bus=BusConfig(
                        solver_mode=mode,
                        capacity_txus=BusConfig().capacity_txus * 2.0,
                    ),
                ),
                seed=11,
                faults=plan,
            )

        ref = run_simulation(spec("newton"))
        vec = run_simulation(spec("vector"))
        assert vec == ref
        assert vec.apps == ref.apps
