"""Unit tests for the counter bank and snapshots."""

import pytest

from repro.errors import CounterError
from repro.hw.counters import CounterBank, CounterSnapshot


@pytest.fixture
def bank() -> CounterBank:
    b = CounterBank()
    b.register(1)
    b.register(2)
    return b


class TestRegistration:
    def test_starts_at_zero(self, bank):
        snap = bank.read(1)
        assert snap.bus_transactions == 0.0
        assert snap.cycles_us == 0.0
        assert snap.work_us == 0.0

    def test_double_register_rejected(self, bank):
        with pytest.raises(CounterError):
            bank.register(1)

    def test_known(self, bank):
        assert bank.known(1)
        assert not bank.known(99)

    def test_threads_sorted(self, bank):
        assert bank.threads() == [1, 2]


class TestCredit:
    def test_accumulates(self, bank):
        bank.credit(1, bus_transactions=5.0, cycles_us=2.0, work_us=1.0)
        bank.credit(1, bus_transactions=3.0)
        snap = bank.read(1)
        assert snap.bus_transactions == 8.0
        assert snap.cycles_us == 2.0

    def test_unknown_thread_rejected(self, bank):
        with pytest.raises(CounterError):
            bank.credit(99, bus_transactions=1.0)

    def test_negative_increment_rejected(self, bank):
        with pytest.raises(CounterError):
            bank.credit(1, bus_transactions=-1.0)

    def test_per_thread_isolation(self, bank):
        bank.credit(1, bus_transactions=5.0)
        assert bank.read(2).bus_transactions == 0.0


class TestRead:
    def test_unknown_read_rejected(self, bank):
        with pytest.raises(CounterError):
            bank.read(42)

    def test_read_many_accumulates(self, bank):
        bank.credit(1, bus_transactions=5.0, cycles_us=1.0)
        bank.credit(2, bus_transactions=7.0, cycles_us=2.0)
        total = bank.read_many([1, 2])
        assert total.bus_transactions == 12.0
        assert total.cycles_us == 3.0


class TestSnapshotDelta:
    def test_delta(self):
        early = CounterSnapshot(10.0, 5.0, 3.0)
        late = CounterSnapshot(15.0, 8.0, 4.0)
        d = late.delta(early)
        assert d.bus_transactions == 5.0
        assert d.cycles_us == 3.0
        assert d.work_us == 1.0

    def test_out_of_order_rejected(self):
        early = CounterSnapshot(10.0, 5.0, 3.0)
        late = CounterSnapshot(15.0, 8.0, 4.0)
        with pytest.raises(CounterError):
            early.delta(late)
