"""Unit tests for the bus contention model (calibration anchors + regimes)."""

import pytest

from repro.config import BusConfig
from repro.errors import WorkloadError
from repro.hw.bus import BusModel, BusRequest, derive_mem_fraction


@pytest.fixture
def bus() -> BusModel:
    return BusModel(BusConfig())


class TestDeriveMemFraction:
    def test_streaming_thread_fully_memory_bound(self):
        assert derive_mem_fraction(23.6, 1 / 23.6) == 1.0

    def test_above_ceiling_capped(self):
        assert derive_mem_fraction(100.0, 1 / 23.6) == 1.0

    def test_zero_rate_zero_fraction(self):
        assert derive_mem_fraction(0.0, 1 / 23.6) == 0.0

    def test_monotone_in_rate(self):
        fractions = [derive_mem_fraction(r, 1 / 23.6) for r in (1.0, 5.0, 10.0, 20.0)]
        assert fractions == sorted(fractions)

    def test_exponent_one_is_linear(self):
        assert derive_mem_fraction(11.8, 1 / 23.6, 1.0) == pytest.approx(0.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError):
            derive_mem_fraction(-1.0, 1 / 23.6)


class TestBusRequest:
    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError):
            BusRequest(-1.0, 0.5)

    def test_bad_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            BusRequest(1.0, 1.5)

    def test_zero_rate_with_stalls_rejected(self):
        with pytest.raises(WorkloadError):
            BusRequest(0.0, 0.5)


class TestEmptyAndSolo:
    def test_empty_solution(self, bus):
        sol = bus.solve([])
        assert sol.total_txus == 0.0
        assert sol.utilisation == 0.0
        assert sol.grants == ()

    def test_single_low_demand_runs_full_speed(self, bus):
        sol = bus.solve([bus.request_for_rate(0.5)])
        assert sol.grants[0].speed == pytest.approx(1.0, abs=0.01)
        assert sol.grants[0].actual_txus == pytest.approx(0.5, rel=0.01)

    def test_zero_demand_thread(self, bus):
        sol = bus.solve([BusRequest(0.0, 0.0)])
        assert sol.grants[0].speed == 1.0
        assert sol.grants[0].actual_txus == 0.0

    def test_solo_bbma_reaches_paper_rate(self, bus):
        # Within ~4%: the solo run already carries a little arbitration
        # latency (rho = 0.8 for one streaming thread).
        sol = bus.solve([BusRequest(23.6, 1.0)])
        assert sol.grants[0].actual_txus == pytest.approx(23.6, rel=0.04)


class TestPaperAnchors:
    """The Section 3 calibration points the model was built to hit."""

    def test_stream_sustains_capacity(self, bus):
        sol = bus.solve([BusRequest(23.6, 1.0)] * 4)
        assert sol.saturated
        assert sol.total_txus == pytest.approx(bus.capacity, rel=1e-6)

    def test_two_cg_instances_hit_bandwidth_ceiling(self, bus):
        # 4 threads at 11.655 tx/us: ceiling slowdown = 46.62/29.5 = 1.58
        sol = bus.solve([bus.request_for_rate(11.655)] * 4)
        assert sol.saturated
        assert sol.grants[0].speed == pytest.approx(29.5 / 46.62, rel=0.01)

    def test_cg_with_bbma_slows_two_to_three_fold(self, bus):
        reqs = [bus.request_for_rate(11.655)] * 2 + [BusRequest(23.6, 1.0)] * 2
        sol = bus.solve(reqs)
        cg_speed = sol.grants[0].speed
        assert 1 / 3 < cg_speed < 1 / 1.8  # 1.8x..3x slowdown band

    def test_low_demand_with_bbma_mild_slowdown(self, bus):
        reqs = [bus.request_for_rate(0.24)] * 2 + [BusRequest(23.6, 1.0)] * 2
        sol = bus.solve(reqs)
        assert sol.grants[0].speed > 0.9  # Radiosity: few percent

    def test_saturated_throughput_equals_capacity(self, bus):
        for n in (2, 3, 5, 8):
            sol = bus.solve([BusRequest(23.6, 1.0)] * n)
            assert sol.total_txus == pytest.approx(bus.capacity, rel=1e-6)


class TestRegimes:
    def test_unsaturated_below_capacity(self, bus):
        sol = bus.solve([bus.request_for_rate(2.0)] * 4)
        assert not sol.saturated
        assert sol.total_txus < bus.capacity
        assert sol.utilisation == pytest.approx(sol.total_txus / bus.capacity)

    def test_speeds_bounded(self, bus):
        for rates in ([1.0], [10.0, 20.0], [23.6] * 6):
            sol = bus.solve([bus.request_for_rate(r) for r in rates])
            for g in sol.grants:
                assert 0.0 < g.speed <= 1.0 + 1e-9

    def test_latency_increases_with_load(self, bus):
        lams = []
        for n in (1, 2, 4, 6):
            sol = bus.solve([BusRequest(23.6, 1.0)] * n)
            lams.append(sol.latency_us)
        assert lams == sorted(lams)
        assert lams[0] >= bus.lam0

    def test_heavier_thread_slows_more(self, bus):
        light = bus.request_for_rate(2.0)
        heavy = bus.request_for_rate(20.0)
        sol = bus.solve([light, heavy, BusRequest(23.6, 1.0), BusRequest(23.6, 1.0)])
        assert sol.grants[0].speed > sol.grants[1].speed

    def test_actual_never_exceeds_demand(self, bus):
        reqs = [bus.request_for_rate(r) for r in (0.5, 5.0, 15.0, 23.6)]
        sol = bus.solve(reqs)
        for req, grant in zip(reqs, sol.grants):
            assert grant.actual_txus <= req.rate_txus + 1e-9

    def test_request_order_preserved(self, bus):
        reqs = [bus.request_for_rate(1.0), bus.request_for_rate(20.0)]
        sol = bus.solve(reqs)
        assert sol.grants[0].actual_txus < sol.grants[1].actual_txus

    def test_solve_calls_counted(self, bus):
        before = bus.solve_calls
        bus.solve([bus.request_for_rate(1.0)])
        assert bus.solve_calls == before + 1


class TestContentionLatency:
    def test_zero_load_latency_is_lam0(self, bus):
        assert bus.contention_latency(0.0) == bus.lam0

    def test_monotone(self, bus):
        values = [bus.contention_latency(r) for r in (0.0, 0.5, 1.0, 2.0)]
        assert values == sorted(values)

    def test_negative_rho_rejected(self, bus):
        with pytest.raises(ValueError):
            bus.contention_latency(-0.1)


class TestMaxMinArbitration:
    @pytest.fixture
    def mm_bus(self) -> BusModel:
        return BusModel(BusConfig(arbitration="max-min"))

    def test_allocation_water_filling(self):
        assert BusModel._max_min_allocation([1.0, 2.0, 10.0], 6.0) == [1.0, 2.0, 3.0]

    def test_allocation_all_satisfiable(self):
        assert BusModel._max_min_allocation([1.0, 2.0], 10.0) == [1.0, 2.0]

    def test_allocation_equal_split_when_all_greedy(self):
        alloc = BusModel._max_min_allocation([10.0, 10.0, 10.0], 9.0)
        assert alloc == pytest.approx([3.0, 3.0, 3.0])

    def test_unsaturated_full_speed(self, mm_bus):
        sol = mm_bus.solve([mm_bus.request_for_rate(2.0)] * 4)
        for g in sol.grants:
            assert g.speed == pytest.approx(1.0)

    def test_saturated_protects_small_demands(self, mm_bus):
        small = mm_bus.request_for_rate(1.0)
        sol = mm_bus.solve([small] + [BusRequest(23.6, 1.0)] * 3)
        # max-min fully satisfies the 1 tx/us thread
        assert sol.grants[0].speed == pytest.approx(1.0, rel=0.01)

    def test_saturated_equal_shares_for_streams(self, mm_bus):
        sol = mm_bus.solve([BusRequest(23.6, 1.0)] * 4)
        shares = [g.actual_txus for g in sol.grants]
        assert max(shares) - min(shares) < 1e-9
        assert sum(shares) == pytest.approx(mm_bus.capacity, rel=1e-6)
