"""Unit tests for CPU bookkeeping."""

import pytest

from repro.errors import SchedulingError
from repro.hw.cpu import Cpu


class TestDispatchAccounting:
    def test_starts_idle(self):
        cpu = Cpu(0)
        assert cpu.idle
        assert cpu.tid is None

    def test_dispatch_returns_previous(self):
        cpu = Cpu(0)
        assert cpu.set_thread(1, 10.0) is None
        assert cpu.set_thread(2, 20.0) == 1
        assert cpu.tid == 2

    def test_redundant_dispatch_raises(self):
        cpu = Cpu(0)
        cpu.set_thread(1, 0.0)
        with pytest.raises(SchedulingError):
            cpu.set_thread(1, 1.0)

    def test_dispatch_counts(self):
        cpu = Cpu(0)
        cpu.set_thread(1, 0.0)
        cpu.set_thread(2, 1.0)
        cpu.set_thread(None, 2.0)
        cpu.set_thread(3, 3.0)
        assert cpu.dispatches == 3
        assert cpu.context_switches == 1  # only 1 -> 2 replaced a runner


class TestIdleAccounting:
    def test_idle_time_accumulates_before_first_dispatch(self):
        cpu = Cpu(0)
        assert cpu.idle_time(5.0) == 5.0

    def test_idle_time_frozen_while_busy(self):
        cpu = Cpu(0)
        cpu.set_thread(1, 2.0)
        assert cpu.idle_time(10.0) == 2.0

    def test_idle_time_resumes_after_undispatch(self):
        cpu = Cpu(0)
        cpu.set_thread(1, 2.0)
        cpu.set_thread(None, 6.0)
        assert cpu.idle_time(10.0) == pytest.approx(2.0 + 4.0)
