"""Warm-started Newton solver: tolerance-equivalence with bisection.

The `solver_mode="newton"` fast path must produce equilibria that agree
with the default bisection solver to within the configured fixed-point
tolerance, on arbitrary workloads — the ISSUE 2 acceptance property.
Alongside the property tests, this module covers the warm-start counters
and the process-shared solve cache used by chunked parallel dispatch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BusConfig
from repro.errors import ConfigError
from repro.hw.bus import (
    BusModel,
    clear_shared_solve_cache,
    install_shared_solve_cache,
    shared_solve_cache,
)

_rates = st.floats(min_value=0.0, max_value=60.0, allow_nan=False, allow_infinity=False)
_request_lists = st.lists(_rates, min_size=1, max_size=10)


def _pair(arbitration="shared-latency") -> tuple[BusModel, BusModel]:
    bisect = BusModel(BusConfig(arbitration=arbitration, solver_mode="bisect"))
    newton = BusModel(BusConfig(arbitration=arbitration, solver_mode="newton"))
    return bisect, newton


class TestSolverModeConfig:
    def test_default_is_bisect(self):
        assert BusConfig().solver_mode == "bisect"

    def test_newton_accepted(self):
        assert BusConfig(solver_mode="newton").solver_mode == "newton"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            BusConfig(solver_mode="brent")


@given(_request_lists)
@settings(max_examples=300, deadline=None)
def test_newton_equilibrium_matches_bisect_within_tolerance(rates):
    bisect, newton = _pair()
    reqs_b = [bisect.request_for_rate(r) for r in rates]
    reqs_n = [newton.request_for_rate(r) for r in rates]
    sol_b = bisect.solve(reqs_b)
    sol_n = newton.solve(reqs_n)
    tol = bisect.config.fixed_point_tol * bisect.lam0
    assert sol_n.saturated == sol_b.saturated
    assert sol_n.latency_us == pytest.approx(sol_b.latency_us, abs=2 * tol, rel=1e-6)
    assert sol_n.total_txus == pytest.approx(sol_b.total_txus, rel=1e-6, abs=1e-9)
    for gb, gn in zip(sol_b.grants, sol_n.grants):
        assert gn.speed == pytest.approx(gb.speed, rel=1e-6, abs=1e-9)


@given(st.lists(_request_lists, min_size=2, max_size=6))
@settings(max_examples=100, deadline=None)
def test_newton_agrees_across_drifting_sequences(rate_lists):
    # Warm starts carry state between solves; agreement must survive a
    # whole *sequence* of solves, not just a single cold call.
    bisect, newton = _pair()
    for rates in rate_lists:
        sol_b = bisect.solve([bisect.request_for_rate(r) for r in rates])
        sol_n = newton.solve([newton.request_for_rate(r) for r in rates])
        tol = bisect.config.fixed_point_tol * bisect.lam0
        assert sol_n.latency_us == pytest.approx(sol_b.latency_us, abs=2 * tol, rel=1e-6)


@given(_request_lists)
@settings(max_examples=150, deadline=None)
def test_newton_conservation_and_speed_bounds(rates):
    _, newton = _pair()
    sol = newton.solve([newton.request_for_rate(r) for r in rates])
    assert sol.total_txus <= newton.capacity * (1 + 1e-9)
    for grant in sol.grants:
        assert 0.0 < grant.speed <= 1.0 + 1e-9


class TestWarmStart:
    def _saturating_rates(self, n=6, base=30.0):
        return [base + i for i in range(n)]

    def test_warm_start_engages_on_drift(self):
        newton = BusModel(BusConfig(solver_mode="newton", solve_cache_size=0))
        for shift in range(12):
            rates = [r + 0.01 * shift for r in self._saturating_rates()]
            newton.solve([newton.request_for_rate(r) for r in rates])
        # Every saturated solve after the first can seed from the last root.
        assert newton.warm_starts >= 10

    def test_newton_uses_fewer_evaluations_than_bisect(self):
        cfg_b = BusConfig(solver_mode="bisect", solve_cache_size=0)
        cfg_n = BusConfig(solver_mode="newton", solve_cache_size=0)
        bisect, newton = BusModel(cfg_b), BusModel(cfg_n)
        for shift in range(25):
            rates = [r + 0.02 * shift for r in self._saturating_rates()]
            bisect.solve([bisect.request_for_rate(r) for r in rates])
            newton.solve([newton.request_for_rate(r) for r in rates])
        assert bisect.bisection_steps > 0
        # ISSUE 2 acceptance: >= 25% fewer root-finder evaluations.
        assert newton.bisection_steps <= 0.75 * bisect.bisection_steps

    def test_bisect_mode_never_warm_starts(self):
        bisect = BusModel(BusConfig(solver_mode="bisect", solve_cache_size=0))
        for shift in range(5):
            rates = [r + 0.1 * shift for r in self._saturating_rates()]
            bisect.solve([bisect.request_for_rate(r) for r in rates])
        assert bisect.warm_starts == 0


class TestSharedSolveCache:
    def setup_method(self):
        clear_shared_solve_cache()

    def teardown_method(self):
        clear_shared_solve_cache()

    def test_not_installed_by_default(self):
        assert shared_solve_cache() is None
        bus = BusModel(BusConfig())
        bus.solve([bus.request_for_rate(20.0)])
        assert bus.shared_hits == 0

    def test_second_model_hits_shared_entry(self):
        install_shared_solve_cache()
        cfg = BusConfig()
        rates = [31.0, 33.0, 35.0, 37.0]
        first = BusModel(cfg)
        sol_a = first.solve([first.request_for_rate(r) for r in rates])
        second = BusModel(cfg)
        sol_b = second.solve([second.request_for_rate(r) for r in rates])
        assert second.shared_hits == 1
        assert sol_b.latency_us == sol_a.latency_us  # bitwise replay
        assert sol_b.total_txus == sol_a.total_txus

    def test_different_config_never_shares(self):
        install_shared_solve_cache()
        rates = [31.0, 33.0, 35.0]
        a = BusModel(BusConfig())
        a.solve([a.request_for_rate(r) for r in rates])
        b = BusModel(BusConfig(fixed_point_tol=1e-8))
        b.solve([b.request_for_rate(r) for r in rates])
        assert b.shared_hits == 0

    def test_newton_mode_skips_shared_cache(self):
        # Newton results depend on per-model warm-start history, so they
        # must not be replayed across models.
        install_shared_solve_cache()
        rates = [31.0, 33.0, 35.0]
        a = BusModel(BusConfig(solver_mode="newton"))
        a.solve([a.request_for_rate(r) for r in rates])
        b = BusModel(BusConfig(solver_mode="newton"))
        b.solve([b.request_for_rate(r) for r in rates])
        assert b.shared_hits == 0
        assert shared_solve_cache().stores == 0

    def test_install_is_idempotent_per_process_scope(self):
        cache = install_shared_solve_cache()
        assert shared_solve_cache() is cache
        clear_shared_solve_cache()
        assert shared_solve_cache() is None
