"""Property-based tests (hypothesis) for the bus contention model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BusConfig
from repro.hw.bus import BusModel, BusRequest

_rates = st.floats(min_value=0.0, max_value=40.0, allow_nan=False, allow_infinity=False)
_request_lists = st.lists(_rates, min_size=1, max_size=8)


def _bus(arbitration="shared-latency") -> BusModel:
    return BusModel(BusConfig(arbitration=arbitration))


@given(_request_lists)
@settings(max_examples=200, deadline=None)
def test_conservation_total_never_exceeds_capacity(rates):
    bus = _bus()
    sol = bus.solve([bus.request_for_rate(r) for r in rates])
    assert sol.total_txus <= bus.capacity * (1 + 1e-9)


@given(_request_lists)
@settings(max_examples=200, deadline=None)
def test_speeds_in_unit_interval(rates):
    bus = _bus()
    sol = bus.solve([bus.request_for_rate(r) for r in rates])
    for grant in sol.grants:
        assert 0.0 < grant.speed <= 1.0 + 1e-9


@given(_request_lists)
@settings(max_examples=200, deadline=None)
def test_actual_rate_is_demand_times_speed(rates):
    bus = _bus()
    reqs = [bus.request_for_rate(r) for r in rates]
    sol = bus.solve(reqs)
    for req, grant in zip(reqs, sol.grants):
        assert grant.actual_txus == pytest.approx(req.rate_txus * grant.speed, rel=1e-9, abs=1e-12)


@given(_request_lists, _rates)
@settings(max_examples=150, deadline=None)
def test_adding_a_thread_never_speeds_anyone_up(rates, extra):
    bus = _bus()
    reqs = [bus.request_for_rate(r) for r in rates]
    before = bus.solve(reqs)
    after = bus.solve(reqs + [bus.request_for_rate(extra)])
    for b, a in zip(before.grants, after.grants):
        assert a.speed <= b.speed * (1 + 1e-9)


@given(_request_lists)
@settings(max_examples=150, deadline=None)
def test_latency_at_least_unloaded(rates):
    bus = _bus()
    sol = bus.solve([bus.request_for_rate(r) for r in rates])
    assert sol.latency_us >= bus.lam0 * (1 - 1e-12)


@given(_request_lists)
@settings(max_examples=150, deadline=None)
def test_saturation_flag_consistent(rates):
    bus = _bus()
    sol = bus.solve([bus.request_for_rate(r) for r in rates])
    if sol.saturated:
        assert sol.total_txus == pytest.approx(bus.capacity, rel=1e-6)
    else:
        assert sol.total_txus <= bus.capacity * (1 + 1e-9)


@given(_request_lists)
@settings(max_examples=150, deadline=None)
def test_max_min_conservation_and_bounds(rates):
    bus = _bus("max-min")
    reqs = [bus.request_for_rate(r) for r in rates]
    sol = bus.solve(reqs)
    assert sol.total_txus <= bus.capacity * (1 + 1e-9)
    for req, grant in zip(reqs, sol.grants):
        assert 0.0 <= grant.speed <= 1.0 + 1e-9
        assert grant.actual_txus <= req.rate_txus + 1e-9


@given(st.lists(_rates, min_size=1, max_size=10), st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=200, deadline=None)
def test_water_filling_properties(demands, capacity):
    alloc = BusModel._max_min_allocation(demands, capacity)
    assert len(alloc) == len(demands)
    # never over-allocate a demand, never exceed capacity
    for a, d in zip(alloc, demands):
        assert -1e-9 <= a <= d + 1e-9
    assert sum(alloc) <= capacity + 1e-6
    # if total demand exceeds capacity, capacity is fully used
    if sum(demands) > capacity:
        assert sum(alloc) == pytest.approx(capacity, rel=1e-6)
    # max-min fairness: any unsatisfied thread got at least as much as
    # every other thread's allocation (within tolerance)
    for i, (a, d) in enumerate(zip(alloc, demands)):
        if a < d - 1e-6:  # unsatisfied
            assert a >= max(alloc) - 1e-6
