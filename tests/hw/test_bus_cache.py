"""Unit tests for the bus-solve memo cache (hit/miss accounting, eviction,
permutation hits, and cached-vs-uncached identity)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BusConfig
from repro.hw.bus import BusModel, BusRequest


@pytest.fixture
def bus() -> BusModel:
    return BusModel(BusConfig())


def _requests(bus: BusModel, rates: list[float]) -> list[BusRequest]:
    return [bus.request_for_rate(r) for r in rates]


class TestAccounting:
    def test_first_solve_is_a_miss(self, bus):
        bus.solve(_requests(bus, [3.0, 7.0]))
        assert bus.solve_calls == 1
        assert bus.cache_hits == 0
        assert bus.cache_len == 1

    def test_repeat_solve_is_a_hit(self, bus):
        reqs = _requests(bus, [3.0, 7.0])
        first = bus.solve(reqs)
        second = bus.solve(reqs)
        assert bus.solve_calls == 2
        assert bus.cache_hits == 1
        assert bus.cache_len == 1
        assert second == first

    def test_distinct_request_sets_all_miss(self, bus):
        for rates in ([1.0], [2.0], [1.0, 2.0]):
            bus.solve(_requests(bus, rates))
        assert bus.solve_calls == 3
        assert bus.cache_hits == 0
        assert bus.cache_len == 3

    def test_empty_solve_not_cached(self, bus):
        bus.solve([])
        bus.solve([])
        assert bus.solve_calls == 2
        assert bus.cache_hits == 0
        assert bus.cache_len == 0

    def test_cache_hit_skips_bisection(self, bus):
        reqs = _requests(bus, [10.0, 15.0, 20.0])
        bus.solve(reqs)
        steps_after_miss = bus.bisection_steps
        assert steps_after_miss > 0
        bus.solve(reqs)
        assert bus.bisection_steps == steps_after_miss


class TestPermutation:
    def test_permuted_requests_hit_and_grants_follow_caller_order(self, bus):
        rates = [2.0, 9.0, 17.0]
        forward = bus.solve(_requests(bus, rates))
        backward = bus.solve(_requests(bus, rates[::-1]))
        assert bus.cache_hits == 1
        assert backward.total_txus == forward.total_txus
        assert backward.latency_us == forward.latency_us
        assert list(backward.grants) == list(forward.grants)[::-1]

    def test_same_order_hit_returns_equal_solution(self, bus):
        reqs = _requests(bus, [2.0, 9.0, 17.0])
        assert bus.solve(reqs) == bus.solve(reqs)


class TestEviction:
    def test_eviction_at_capacity(self):
        bus = BusModel(BusConfig(solve_cache_size=2))
        bus.solve(_requests(bus, [1.0]))
        bus.solve(_requests(bus, [2.0]))
        bus.solve(_requests(bus, [3.0]))  # evicts [1.0] (LRU)
        assert bus.cache_len == 2
        bus.solve(_requests(bus, [1.0]))  # miss: was evicted
        assert bus.cache_hits == 0
        bus.solve(_requests(bus, [3.0]))  # still resident? no — [1.0] evicted [2.0]
        assert bus.cache_hits == 1

    def test_hit_refreshes_lru_position(self):
        bus = BusModel(BusConfig(solve_cache_size=2))
        bus.solve(_requests(bus, [1.0]))
        bus.solve(_requests(bus, [2.0]))
        bus.solve(_requests(bus, [1.0]))  # hit: [1.0] becomes most-recent
        bus.solve(_requests(bus, [3.0]))  # evicts [2.0], not [1.0]
        bus.solve(_requests(bus, [1.0]))
        assert bus.cache_hits == 2

    def test_cache_disabled(self):
        bus = BusModel(BusConfig(solve_cache_size=0))
        reqs = _requests(bus, [3.0, 7.0])
        first = bus.solve(reqs)
        second = bus.solve(reqs)
        assert bus.cache_hits == 0
        assert bus.cache_len == 0
        assert second == first


# Rates rounded to 6 decimals are exactly representable at the cache's
# 12-decimal key quantization, so a cached replay must be bitwise equal
# to an uncached solve of the same multiset.
_rate = st.floats(min_value=0.001, max_value=40.0).map(lambda r: round(r, 6))


class TestCachedEqualsUncached:
    @settings(max_examples=60, deadline=None)
    @given(rates=st.lists(_rate, min_size=1, max_size=6))
    def test_cached_solution_bitwise_equals_uncached(self, rates):
        cached = BusModel(BusConfig())
        uncached = BusModel(BusConfig(solve_cache_size=0))
        for _ in range(2):  # second round replays from the cache
            a = cached.solve(_requests(cached, rates))
            b = uncached.solve(_requests(uncached, rates))
            assert a.latency_us == b.latency_us
            assert a.total_txus == b.total_txus
            assert a.utilisation == b.utilisation
            assert a.grants == b.grants
        assert cached.cache_hits == 1

    @settings(max_examples=30, deadline=None)
    @given(rates=st.lists(_rate, min_size=2, max_size=6), data=st.data())
    def test_permuted_replay_reorders_the_canonical_solution(self, rates, data):
        # A permuted hit replays the *canonical* (first-solved) solution
        # with grants reordered to the caller's request order: bitwise
        # equal to the first solve per rate, and within solver tolerance
        # of an independent solve of the permuted order (bisection sums
        # floats in request order, so the last ulp may differ there).
        perm = data.draw(st.permutations(rates))
        cached = BusModel(BusConfig())
        uncached = BusModel(BusConfig(solve_cache_size=0))
        first = cached.solve(_requests(cached, rates))
        a = cached.solve(_requests(cached, perm))
        assert cached.cache_hits == 1
        assert a.latency_us == first.latency_us
        by_rate = dict(zip(rates, first.grants))
        assert list(a.grants) == [by_rate[r] for r in perm]
        b = uncached.solve(_requests(uncached, perm))
        assert a.latency_us == pytest.approx(b.latency_us, rel=1e-9, abs=1e-12)
        for ga, gb in zip(a.grants, b.grants):
            assert ga.speed == pytest.approx(gb.speed, rel=1e-9, abs=1e-12)


class TestRequestMemo:
    def test_request_for_rate_returns_same_object(self, bus):
        assert bus.request_for_rate(5.0) is bus.request_for_rate(5.0)

    def test_distinct_rates_distinct_requests(self, bus):
        assert bus.request_for_rate(5.0) is not bus.request_for_rate(6.0)
