"""Property-based tests: machine invariants under random operation sequences.

Hypothesis drives random interleavings of dispatch / preempt / block /
advance operations against the machine and asserts the conservation laws
that every experiment silently relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MachineConfig
from repro.hw.machine import Machine
from repro.sim.engine import Engine
from repro.workloads.patterns import ConstantPattern, PhasedPattern


def _machine_with_threads(rates, n_cpus=4, work=50_000.0):
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=n_cpus), engine)
    threads = []
    for i, r in enumerate(rates):
        pattern = (
            ConstantPattern(r)
            if i % 2 == 0
            else PhasedPattern(((1_000.0, r), (500.0, min(r * 2, 30.0))))
        )
        threads.append(
            machine.add_thread(
                f"t{i}",
                pattern.bind(np.random.default_rng(i)),
                work,
                footprint_lines=float(256 * (i + 1)),
            )
        )
    return engine, machine, threads


_ops = st.lists(
    st.tuples(
        st.sampled_from(["dispatch", "preempt", "block", "unblock", "advance"]),
        st.integers(min_value=0, max_value=7),   # thread index
        st.integers(min_value=0, max_value=3),   # cpu index
        st.floats(min_value=1.0, max_value=2_000.0),  # advance dt
    ),
    min_size=5,
    max_size=60,
)

_rates = st.lists(
    st.floats(min_value=0.0, max_value=25.0, allow_nan=False), min_size=2, max_size=8
)


@given(_rates, _ops)
@settings(max_examples=60, deadline=None)
def test_random_operation_sequences_preserve_invariants(rates, ops):
    engine, machine, threads = _machine_with_threads(rates)
    for op, t_idx, cpu_idx, dt in ops:
        thread = threads[t_idx % len(threads)]
        if op == "dispatch":
            if thread.runnable:
                machine.dispatch(cpu_idx, thread.tid)
        elif op == "preempt":
            machine.preempt_thread(thread.tid)
        elif op == "block":
            machine.set_blocked(thread.tid, True)
        elif op == "unblock":
            machine.set_blocked(thread.tid, False)
        else:
            engine.run_until(engine.now + dt, advancer=machine)

        # Invariant 1: a thread is on at most one CPU, and the CPU agrees.
        placements = [c.tid for c in machine.cpus if c.tid is not None]
        assert len(placements) == len(set(placements))
        for c in machine.cpus:
            if c.tid is not None:
                assert machine.thread(c.tid).cpu == c.cpu_id
        # Invariant 2: no blocked or finished thread is running.
        for th in threads:
            if th.blocked or th.finished:
                assert th.cpu is None
        # Invariant 3: counters mirror thread accounting.
        for th in threads:
            snap = machine.counters.read(th.tid)
            assert snap.cycles_us == pytest.approx(th.run_time_us, abs=1e-6)
            assert snap.work_us == pytest.approx(th.work_done, abs=1e-3)
            assert 0.0 <= th.work_done <= th.work_total + 1e-6
            assert th.rebuild_debt >= 0.0
        # Invariant 4: per-core cache occupancy bounded.
        for cache in machine.caches:
            assert cache.occupancy() <= cache.total_lines * (1 + 1e-9)
        # Invariant 5: bus utilisation well-formed.
        assert 0.0 <= machine.bus_utilisation <= 1.0


@given(_rates)
@settings(max_examples=30, deadline=None)
def test_work_conservation_running_to_completion(rates):
    """Running any thread set to completion accumulates exactly its work."""
    engine, machine, threads = _machine_with_threads(rates[:4], work=5_000.0)
    for i, th in enumerate(threads):
        machine.dispatch(i % machine.n_cpus, th.tid)
    engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
    for th in threads:
        assert th.finished
        assert th.work_done == pytest.approx(th.work_total, abs=1e-3)
        snap = machine.counters.read(th.tid)
        assert snap.work_us == pytest.approx(th.work_total, abs=1e-3)
        # wall time on CPU is at least the work (speed <= 1)
        assert snap.cycles_us >= th.work_total * (1 - 1e-9)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_total_throughput_never_exceeds_capacity(seed):
    """Integrated transactions never exceed capacity x busy time."""
    rng = np.random.default_rng(seed)
    rates = [float(rng.uniform(0, 24)) for _ in range(4)]
    engine, machine, threads = _machine_with_threads(rates, work=20_000.0)
    for i, th in enumerate(threads):
        machine.dispatch(i, th.tid)
    engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
    total_tx = sum(machine.counters.read(t.tid).bus_transactions for t in threads)
    capacity = machine.bus.capacity
    assert total_tx <= capacity * machine.now * (1 + 1e-9)
