"""Unit tests for the assembled machine (settling, dispatch, transitions)."""

import math

import numpy as np
import pytest

from repro.config import CacheConfig, MachineConfig
from repro.errors import SchedulingError, SimulationError, WorkloadError
from repro.hw.machine import Machine
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.patterns import ConstantPattern, PhasedPattern


def _const(rate: float):
    return ConstantPattern(rate).bind(np.random.default_rng(0))


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def machine(engine):
    return Machine(MachineConfig(), engine, TraceRecorder())


class TestThreadRegistration:
    def test_tids_monotone(self, machine):
        a = machine.add_thread("a", _const(1.0), 100.0)
        b = machine.add_thread("b", _const(1.0), 100.0)
        assert b.tid == a.tid + 1

    def test_counters_registered(self, machine):
        t = machine.add_thread("a", _const(1.0), 100.0)
        assert machine.counters.known(t.tid)

    def test_invalid_work_rejected(self, machine):
        with pytest.raises(WorkloadError):
            machine.add_thread("a", _const(1.0), 0.0)

    def test_negative_footprint_rejected(self, machine):
        with pytest.raises(WorkloadError):
            machine.add_thread("a", _const(1.0), 10.0, footprint_lines=-1.0)

    def test_unknown_thread_lookup(self, machine):
        with pytest.raises(SchedulingError):
            machine.thread(999)


class TestDispatch:
    def test_dispatch_and_run_to_completion(self, machine, engine):
        t = machine.add_thread("a", _const(0.0), 1000.0, footprint_lines=0.0)
        machine.dispatch(0, t.tid)
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e8)
        assert t.finished
        # zero demand, warm cache: exactly solo speed
        assert t.finished_at == pytest.approx(1000.0)

    def test_preemption_vacates_previous(self, machine):
        a = machine.add_thread("a", _const(1.0), 100.0)
        b = machine.add_thread("b", _const(1.0), 100.0)
        machine.dispatch(0, a.tid)
        machine.dispatch(0, b.tid)
        assert a.cpu is None
        assert b.cpu == 0

    def test_migration_moves_thread(self, machine):
        a = machine.add_thread("a", _const(1.0), 100.0)
        machine.dispatch(0, a.tid)
        machine.dispatch(1, a.tid)
        assert a.cpu == 1
        assert machine.cpus[0].tid is None
        assert a.migration_count == 1

    def test_dispatch_blocked_rejected(self, machine):
        a = machine.add_thread("a", _const(1.0), 100.0)
        machine.set_blocked(a.tid, True)
        with pytest.raises(SchedulingError):
            machine.dispatch(0, a.tid)

    def test_dispatch_finished_rejected(self, machine, engine):
        a = machine.add_thread("a", _const(0.0), 10.0, footprint_lines=0.0)
        machine.dispatch(0, a.tid)
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e7)
        with pytest.raises(SchedulingError):
            machine.dispatch(0, a.tid)

    def test_bad_cpu_rejected(self, machine):
        a = machine.add_thread("a", _const(1.0), 100.0)
        with pytest.raises(SchedulingError):
            machine.dispatch(7, a.tid)

    def test_idempotent_redispatch(self, machine):
        a = machine.add_thread("a", _const(1.0), 100.0)
        machine.dispatch(0, a.tid)
        machine.dispatch(0, a.tid)  # no-op, no error
        assert a.cpu == 0


class TestBlocking:
    def test_blocking_vacates_cpu(self, machine):
        a = machine.add_thread("a", _const(1.0), 100.0)
        machine.dispatch(0, a.tid)
        machine.set_blocked(a.tid, True)
        assert a.cpu is None
        assert not a.runnable

    def test_unblock_restores_runnable(self, machine):
        a = machine.add_thread("a", _const(1.0), 100.0)
        machine.set_blocked(a.tid, True)
        machine.set_blocked(a.tid, False)
        assert a.runnable

    def test_blocked_thread_makes_no_progress(self, machine, engine):
        a = machine.add_thread("a", _const(1.0), 1000.0)
        b = machine.add_thread("b", _const(1.0), 1000.0)
        machine.set_blocked(a.tid, True)
        machine.dispatch(0, b.tid)
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e8)
        assert b.finished
        assert a.work_done == 0.0
        assert not a.finished


class TestProgressAccounting:
    def test_work_conserves_speed_times_time(self, machine, engine):
        a = machine.add_thread("a", _const(5.0), 10_000.0, footprint_lines=0.0)
        machine.dispatch(0, a.tid)
        engine.run_until(1_000.0, advancer=machine)
        snap = machine.counters.read(a.tid)
        assert snap.cycles_us == pytest.approx(1_000.0)
        assert snap.work_us == pytest.approx(a.work_done)
        # near-solo speed for a light thread with no cold-cache debt
        assert a.work_done == pytest.approx(1_000.0, rel=0.02)

    def test_transactions_proportional_to_rate(self, machine, engine):
        a = machine.add_thread("a", _const(2.0), 50_000.0, footprint_lines=0.0)
        b = machine.add_thread("b", _const(8.0), 50_000.0, footprint_lines=0.0)
        machine.dispatch(0, a.tid)
        machine.dispatch(1, b.tid)
        engine.run_until(10_000.0, advancer=machine)
        tx_a = machine.counters.read(a.tid).bus_transactions
        tx_b = machine.counters.read(b.tid).bus_transactions
        assert tx_b / tx_a == pytest.approx(4.0, rel=0.05)

    def test_exit_listener_fires(self, machine, engine):
        exited = []
        machine.add_exit_listener(lambda t: exited.append(t.tid))
        a = machine.add_thread("a", _const(0.0), 10.0, footprint_lines=0.0)
        machine.dispatch(0, a.tid)
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e7)
        assert exited == [a.tid]

    def test_horizon_infinite_when_idle(self, machine):
        machine.add_thread("a", _const(1.0), 100.0)
        assert machine.horizon() == math.inf

    def test_cannot_advance_backwards(self, machine, engine):
        engine.run_until(10.0, advancer=machine)
        with pytest.raises(SimulationError):
            machine.advance_to(5.0)


class TestPhaseTransitions:
    def test_phased_demand_changes_at_boundary(self, machine, engine):
        pattern = PhasedPattern(((100.0, 0.0), (100.0, 20.0))).bind(np.random.default_rng(0))
        a = machine.add_thread("a", pattern, 1_000.0, footprint_lines=0.0)
        machine.dispatch(0, a.tid)
        # run through the first (silent) phase only
        engine.run_until(99.0, advancer=machine)
        assert machine.counters.read(a.tid).bus_transactions == pytest.approx(0.0, abs=1e-6)
        engine.run_until(150.0, advancer=machine)
        assert machine.counters.read(a.tid).bus_transactions > 0.0

    def test_completion_exact(self, machine, engine):
        a = machine.add_thread("a", _const(0.0), 500.0, footprint_lines=0.0)
        machine.dispatch(0, a.tid)
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e7)
        assert a.work_done == a.work_total
        assert a.finished_at == pytest.approx(500.0)


class TestRebuildDebt:
    def test_cold_dispatch_charges_debt(self, machine):
        a = machine.add_thread("a", _const(1.0), 10_000.0, footprint_lines=1000.0)
        machine.dispatch(0, a.tid)
        assert a.rebuild_debt == pytest.approx(1000.0)

    def test_migration_multiplies_debt(self, machine, engine):
        a = machine.add_thread(
            "a", _const(1.0), 1e6, footprint_lines=1000.0, migration_sensitivity=3.0
        )
        machine.dispatch(0, a.tid)
        engine.run_until(50_000.0, advancer=machine)  # warm up on cpu 0
        machine.dispatch(1, a.tid)  # migrate to cold cpu 1
        assert a.rebuild_debt == pytest.approx(1000.0 * 4.0, rel=0.05)

    def test_debt_drains(self, machine, engine):
        a = machine.add_thread("a", _const(1.0), 1e6, footprint_lines=1000.0)
        machine.dispatch(0, a.tid)
        engine.run_until(10_000.0, advancer=machine)
        assert a.rebuild_debt == 0.0

    def test_progress_slower_during_rebuild(self, machine, engine):
        cfg = MachineConfig(cache=CacheConfig(rebuild_progress_factor=0.5))
        eng = Engine()
        m = Machine(cfg, eng)
        a = m.add_thread("a", _const(0.0), 1e6, footprint_lines=2000.0)
        m.dispatch(0, a.tid)
        eng.run_until(50.0, advancer=m)
        assert a.work_done == pytest.approx(25.0, rel=0.05)  # half speed while cold

    def test_add_rebuild_debt_api(self, machine):
        a = machine.add_thread("a", _const(1.0), 1e6, footprint_lines=0.0)
        machine.add_rebuild_debt(a.tid, 64.0)
        assert a.rebuild_debt == 64.0
        with pytest.raises(SchedulingError):
            machine.add_rebuild_debt(a.tid, -1.0)


class TestSubUlpResiduals:
    """Regression: horizon pinning at large absolute times.

    At t ~ 5e8 us a debt residual just above the snap tolerance can have a
    drain time smaller than ulp(t), so ``t + drain == t``. The horizon
    must quantize up to the next representable instant (and must never
    serve a cached value equal to `now`), or the engine livelocks with
    the horizon pinned at the current instant and no events firing.
    """

    # ulp(2**40) ~ 2.4e-4 us: any plausible residual drain rounds to zero
    T = float(2**40)

    def _pinned_machine(self, machine):
        a = machine.add_thread("a", _const(1.0), 1e15, footprint_lines=0.0)
        machine.dispatch(0, a.tid)
        machine.advance_to(self.T)
        machine.add_rebuild_debt(a.tid, 1.2e-6)  # just above _SNAP
        return a

    def test_horizon_strictly_ahead_of_sub_ulp_residual(self, machine):
        self._pinned_machine(machine)
        h = machine.horizon()
        assert h > machine.now
        assert h == math.nextafter(machine.now, math.inf)

    def test_residual_drains_instead_of_pinning(self, machine):
        a = self._pinned_machine(machine)
        for _ in range(64):
            if a.rebuild_debt == 0.0:
                break
            h = machine.horizon()
            assert h > machine.now  # forward progress on every step
            machine.advance_to(h)
        assert a.rebuild_debt == 0.0

    def test_stale_cached_horizon_is_recomputed(self, machine):
        a = self._pinned_machine(machine)
        h1 = machine.horizon()
        # Force the state the engine can reach: the cached horizon was a
        # legitimate future instant, the engine advanced exactly to it,
        # and the transition pass left a residual above the snap
        # tolerance without marking dirty. The cache now reads `now`.
        machine._horizon_abs = machine.now
        assert machine.horizon() == h1  # pinned cache rejected, recomputed
        assert a.rebuild_debt > 0.0


class TestUtilisationIntrospection:
    def test_idle_machine_zero_utilisation(self, machine):
        assert machine.bus_utilisation == 0.0

    def test_saturated_utilisation(self, machine, engine):
        for i in range(4):
            t = machine.add_thread(f"s{i}", _const(23.6), 1e6, footprint_lines=0.0)
            machine.dispatch(i, t.tid)
        assert machine.bus_utilisation == pytest.approx(1.0, abs=0.01)

    def test_thread_speed_query(self, machine):
        a = machine.add_thread("a", _const(1.0), 1e6, footprint_lines=0.0)
        assert machine.thread_speed(a.tid) == 0.0  # not running
        machine.dispatch(0, a.tid)
        assert 0.9 < machine.thread_speed(a.tid) <= 1.0
