"""SMT (hyperthreading) machine-model tests."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.hw.machine import Machine
from repro.sim.engine import Engine
from repro.workloads.patterns import ConstantPattern


def _machine(smt_ways=2, smt_efficiency=0.6, n_cpus=2):
    engine = Engine()
    cfg = MachineConfig(n_cpus=n_cpus, smt_ways=smt_ways, smt_efficiency=smt_efficiency)
    return engine, Machine(cfg, engine)


def _thread(machine, rate=0.0, work=1e6):
    return machine.add_thread(
        f"t{rate}", ConstantPattern(rate).bind(np.random.default_rng(0)), work,
        footprint_lines=0.0,
    )


class TestTopology:
    def test_logical_cpu_count(self):
        _, m = _machine(smt_ways=2, n_cpus=2)
        assert m.n_cpus == 4
        assert len(m.caches) == 2  # per core, not per logical cpu

    def test_core_mapping(self):
        cfg = MachineConfig(n_cpus=2, smt_ways=2)
        assert [cfg.core_of(i) for i in range(4)] == [0, 0, 1, 1]
        with pytest.raises(ConfigError):
            cfg.core_of(4)

    def test_siblings_share_cache(self):
        _, m = _machine(smt_ways=2, n_cpus=2)
        assert m.cache_of(0) is m.cache_of(1)
        assert m.cache_of(2) is m.cache_of(3)
        assert m.cache_of(0) is not m.cache_of(2)

    def test_smt_disabled_is_paper_machine(self):
        cfg = MachineConfig()
        assert cfg.smt_ways == 1
        assert cfg.n_logical_cpus == 4

    @pytest.mark.parametrize("kw", [{"smt_ways": 0}, {"smt_efficiency": 0.0}, {"smt_efficiency": 1.5}])
    def test_invalid_config(self, kw):
        with pytest.raises(ConfigError):
            MachineConfig(**kw)


class TestSharingSlowdown:
    def test_lone_thread_full_speed(self):
        engine, m = _machine(smt_efficiency=0.6)
        t = _thread(m)
        m.dispatch(0, t.tid)
        engine.run_until(1000.0, advancer=m)
        assert t.work_done == pytest.approx(1000.0, rel=0.01)

    def test_siblings_slow_each_other(self):
        engine, m = _machine(smt_efficiency=0.6)
        a = _thread(m)
        b = _thread(m)
        m.dispatch(0, a.tid)
        m.dispatch(1, b.tid)  # sibling of cpu 0
        engine.run_until(1000.0, advancer=m)
        assert a.work_done == pytest.approx(600.0, rel=0.01)
        assert b.work_done == pytest.approx(600.0, rel=0.01)

    def test_different_cores_unaffected(self):
        engine, m = _machine(smt_efficiency=0.6)
        a = _thread(m)
        b = _thread(m)
        m.dispatch(0, a.tid)
        m.dispatch(2, b.tid)  # other core
        engine.run_until(1000.0, advancer=m)
        assert a.work_done == pytest.approx(1000.0, rel=0.01)

    def test_sibling_departure_restores_speed(self):
        engine, m = _machine(smt_efficiency=0.5)
        a = _thread(m)
        b = _thread(m, work=250.0)  # finishes early (at 0.5 speed: t=500)
        m.dispatch(0, a.tid)
        m.dispatch(1, b.tid)
        engine.run(advancer=m, stop=m.all_finished, max_time=1e7)
        # b ran 250 work at 0.5 -> 500us; a did 250 at 0.5 then the rest solo
        assert b.finished_at == pytest.approx(500.0, rel=0.01)

    def test_smt_demand_scales_with_efficiency(self):
        # a streaming thread sharing a core issues fewer transactions
        engine, m = _machine(smt_efficiency=0.6)
        a = _thread(m, rate=10.0)
        b = _thread(m, rate=0.0)
        m.dispatch(0, a.tid)
        m.dispatch(1, b.tid)
        engine.run_until(1000.0, advancer=m)
        tx = m.counters.read(a.tid).bus_transactions
        assert tx == pytest.approx(10.0 * 0.6 * 1000.0, rel=0.05)


class TestSmtExperiment:
    def test_experiment_runs_and_reports(self):
        from repro.experiments.smt import format_smt_experiment, run_smt_experiment

        rows = run_smt_experiment(apps=["CG"], work_scale=0.05)
        assert rows[0].name == "CG"
        assert len(rows[0].turnarounds_us) == 4
        out = format_smt_experiment(rows)
        assert "EXT-SMT" in out

    def test_ht_hurts_bus_bound_apps(self):
        # With 8 logical CPUs the whole set-A workload runs at once and
        # permanently saturates the bus: HT must hurt CG under the policy.
        from repro.experiments.smt import run_smt_experiment

        rows = run_smt_experiment(apps=["CG"], work_scale=0.1)
        assert rows[0].improvement_of_ht("window") < 0.0
