"""Unit tests for the perfctr driver facade."""

import pytest

from repro.errors import CounterError
from repro.hw.counters import CounterBank
from repro.hw.perfctr import PerfctrDriver


@pytest.fixture
def bank():
    b = CounterBank()
    b.register(1)
    return b


@pytest.fixture
def driver(bank):
    return PerfctrDriver(bank)


class TestOpenClose:
    def test_open_and_read(self, driver, bank):
        h = driver.open(1)
        bank.credit(1, bus_transactions=10.0, cycles_us=5.0)
        reading = h.read()
        assert reading.bus_transactions == 10.0
        assert reading.tsc_us == 5.0

    def test_unknown_thread_rejected(self, driver):
        with pytest.raises(CounterError):
            driver.open(99)

    def test_one_vperfctr_per_task(self, driver):
        driver.open(1)
        with pytest.raises(CounterError):
            driver.open(1)

    def test_close_releases(self, driver):
        h = driver.open(1)
        h.close()
        assert h.closed
        assert driver.open_count == 0
        # can reopen after close
        driver.open(1)

    def test_read_after_close_rejected(self, driver):
        h = driver.open(1)
        h.close()
        with pytest.raises(CounterError):
            h.read()

    def test_double_close_is_noop(self, driver):
        h = driver.open(1)
        h.close()
        h.close()

    def test_tid_property(self, driver):
        assert driver.open(1).tid == 1
