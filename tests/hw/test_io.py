"""I/O sleep machinery tests (machine + scheduler reactions)."""

import numpy as np
import pytest

from repro.config import LinuxSchedConfig, MachineConfig
from repro.errors import WorkloadError
from repro.hw.machine import Machine
from repro.sched.dedicated import DedicatedScheduler
from repro.sched.linux import LinuxScheduler
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.patterns import ConstantPattern


def _machine(n_cpus=2):
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=n_cpus), engine, TraceRecorder())
    return engine, machine


def _io_thread(machine, work=10_000.0, interval=1_000.0, duration=500.0, rate=0.0):
    return machine.add_thread(
        "io",
        ConstantPattern(rate).bind(np.random.default_rng(0)),
        work,
        footprint_lines=0.0,
        io_interval_work_us=interval,
        io_duration_us=duration,
    )


class TestIoMechanics:
    def test_thread_sleeps_at_interval(self):
        engine, machine = _machine()
        t = _io_thread(machine)
        machine.dispatch(0, t.tid)
        engine.run_until(1_100.0, advancer=machine)
        # first io starts after 1000us of work (full speed -> t=1000)
        assert t.in_io
        assert t.cpu is None
        assert t.io_count == 1

    def test_wakeup_after_duration(self):
        engine, machine = _machine()
        t = _io_thread(machine)
        machine.dispatch(0, t.tid)
        engine.run_until(1_600.0, advancer=machine)
        assert not t.in_io
        assert t.runnable

    def test_completion_time_includes_waits(self):
        # 10k work, io every 1k for 500us -> 9 full sleeps mid-run
        engine, machine = _machine()
        t = _io_thread(machine)
        sched = DedicatedScheduler()
        sched.attach(machine, engine, np.random.default_rng(0))
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e8)
        # dedicated re-pins after each wake: total = 10000 work + 9..10 sleeps
        assert t.finished_at == pytest.approx(10_000.0 + 9 * 500.0, rel=0.02)
        assert t.io_count == 9 or t.io_count == 10

    def test_io_time_not_counted_as_runtime(self):
        engine, machine = _machine()
        t = _io_thread(machine)
        sched = DedicatedScheduler()
        sched.attach(machine, engine, np.random.default_rng(0))
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e8)
        assert t.run_time_us == pytest.approx(10_000.0, rel=0.02)

    def test_invalid_io_params(self):
        engine, machine = _machine()
        with pytest.raises(WorkloadError):
            _io_thread(machine, interval=0.0)
        with pytest.raises(WorkloadError):
            _io_thread(machine, duration=-1.0)

    def test_trace_records_sleep_and_wake(self):
        engine, machine = _machine()
        t = _io_thread(machine, work=2_500.0)
        sched = DedicatedScheduler()
        sched.attach(machine, engine, np.random.default_rng(0))
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e8)
        assert machine.trace.count("thread.iosleep") == 2
        assert machine.trace.count("thread.iowake") == 2


class TestSchedulerReactions:
    def test_linux_fills_cpu_during_io(self):
        engine, machine = _machine(n_cpus=1)
        io_t = _io_thread(machine, work=5_000.0)
        cpu_t = machine.add_thread(
            "cpu", ConstantPattern(0.0).bind(np.random.default_rng(1)), 5_000.0,
            footprint_lines=0.0,
        )
        sched = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
        sched.attach(machine, engine, np.random.default_rng(2))
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e8)
        # the cpu-bound thread ran during the io thread's sleeps: the
        # makespan is shorter than strictly serial execution of both
        serial = 5_000.0 + 5_000.0 + 4 * 500.0
        assert machine.now < serial

    def test_woken_thread_eventually_rescheduled(self):
        engine, machine = _machine(n_cpus=1)
        io_t = _io_thread(machine, work=3_000.0)
        sched = LinuxScheduler(LinuxSchedConfig(rebalance_prob=0.0))
        sched.attach(machine, engine, np.random.default_rng(2))
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e8)
        assert io_t.finished

    def test_runnable_excludes_io(self):
        engine, machine = _machine()
        t = _io_thread(machine)
        machine.dispatch(0, t.tid)
        engine.run_until(1_100.0, advancer=machine)
        assert t.in_io
        assert t not in machine.runnable_threads()


class TestIoExperiment:
    def test_experiment_runs(self):
        from repro.experiments.io import format_io_experiment, run_io_experiment

        rows = run_io_experiment(work_scale=0.05)
        assert {r.name for r in rows} == {"db", "web"}
        for r in rows:
            assert r.io_waits > 0
            assert set(r.turnarounds_us) == {"linux", "window", "model"}
        assert "EXT-IO" in format_io_experiment(rows)

    def test_policies_still_win_with_io(self):
        from repro.experiments.io import run_io_experiment

        rows = run_io_experiment(work_scale=0.15)
        db = next(r for r in rows if r.name == "db")
        assert db.improvement("window") > 0.0
