"""Unit tests for the experiment fan-out executor (`repro.parallel`)."""

import pytest

from repro.config import MachineConfig
from repro.errors import (
    ConfigError,
    RunTimeoutError,
    SimulationError,
    WorkerCrashError,
)
from repro.experiments.base import SimulationSpec, solo_spec
from repro.parallel import (
    SupervisionConfig,
    auto_chunk_size,
    cgroup_cpu_quota,
    default_jobs,
    effective_cpu_budget,
    fork_available,
    resolve_jobs,
    run_many,
    usable_cpus,
)
from repro.workloads.microbench import bbma_spec, nbbma_spec

_SCALE = 0.02


def _specs(n: int = 3) -> list[SimulationSpec]:
    makers = [bbma_spec, nbbma_spec]
    return [
        solo_spec(makers[i % 2](work_us=10_000.0 + 1_000.0 * i), seed=i + 1)
        for i in range(n)
    ]


def _collect_makespan(result, handle):
    return (result.makespan_us, handle.machine.now)


class TestResolveJobs:
    def test_explicit_positive(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_effective_budget(self):
        # "All cores" is the affinity ∩ cgroup-quota budget, NOT the raw
        # os.cpu_count() — a container throttled to 2 cores on a 64-CPU
        # host must resolve to 2, not 64.
        assert resolve_jobs(0) == effective_cpu_budget()

    def test_budget_is_affinity_when_unquotaed(self, monkeypatch):
        import repro.parallel as par

        monkeypatch.setattr(par, "usable_cpus", lambda: 6)
        monkeypatch.setattr(par, "cgroup_cpu_quota", lambda: None)
        assert par.effective_cpu_budget() == 6

    def test_budget_clamped_by_cgroup_quota(self, monkeypatch):
        import repro.parallel as par

        monkeypatch.setattr(par, "usable_cpus", lambda: 64)
        monkeypatch.setattr(par, "cgroup_cpu_quota", lambda: 2.5)
        assert par.effective_cpu_budget() == 2  # floor of fractional quota
        assert par.resolve_jobs(0) == 2
        assert par.resolve_jobs(-1) == 2

    def test_budget_floor_is_one(self, monkeypatch):
        import repro.parallel as par

        monkeypatch.setattr(par, "usable_cpus", lambda: 8)
        monkeypatch.setattr(par, "cgroup_cpu_quota", lambda: 0.5)
        assert par.effective_cpu_budget() == 1

    def test_budget_helpers_sane_on_this_host(self):
        assert usable_cpus() >= 1
        quota = cgroup_cpu_quota()
        assert quota is None or quota > 0
        assert 1 <= effective_cpu_budget() <= usable_cpus()

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_env_garbage_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert default_jobs() == 1

    def test_env_unset_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    def test_clamped_to_spec_count(self):
        assert resolve_jobs(16, n_specs=3) == 3
        assert resolve_jobs(2, n_specs=10) == 2

    def test_clamp_never_below_one(self):
        assert resolve_jobs(4, n_specs=0) == 1


class TestAutoChunkSize:
    def test_four_chunks_per_worker(self):
        assert auto_chunk_size(64, 4) == 4
        assert auto_chunk_size(100, 5) == 5

    def test_small_grids_get_unit_chunks(self):
        assert auto_chunk_size(3, 2) == 1
        assert auto_chunk_size(1, 8) == 1
        assert auto_chunk_size(0, 4) == 1


class TestRunMany:
    def test_empty(self):
        assert run_many([], jobs=4) == []

    def test_serial_matches_parallel_in_order(self):
        specs = _specs(4)
        serial = run_many(specs, jobs=1)
        parallel = run_many(specs, jobs=3)
        assert serial == parallel
        assert [r.makespan_us for r in serial] == [r.makespan_us for r in parallel]

    def test_progress_called_once_per_task(self):
        specs = _specs(3)
        calls: list[tuple[int, int]] = []
        run_many(specs, jobs=1, progress=lambda d, t: calls.append((d, t)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_progress_called_in_parallel_mode(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        specs = _specs(3)
        calls: list[tuple[int, int]] = []
        run_many(specs, jobs=2, progress=lambda d, t: calls.append((d, t)))
        assert sorted(d for d, _ in calls) == [1, 2, 3]
        assert all(t == 3 for _, t in calls)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_collect_pairs_results(self, jobs):
        specs = _specs(2)
        pairs = run_many(specs, jobs=jobs, collect=_collect_makespan)
        assert len(pairs) == 2
        for result, (makespan, machine_now) in pairs:
            assert result.makespan_us == makespan == machine_now

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_errors_propagate(self, jobs):
        bad = SimulationSpec(targets=[], scheduler="linux")
        with pytest.raises(ConfigError):
            run_many([bad], jobs=jobs)
        specs = _specs(2) + [
            SimulationSpec(
                targets=[bbma_spec(work_us=10_000.0)],
                scheduler="dedicated",
                machine=MachineConfig(),
                max_time_us=1.0,  # too short: the run cannot finish
            )
        ]
        with pytest.raises(SimulationError):
            run_many(specs, jobs=jobs)

    def test_more_jobs_than_specs(self):
        specs = _specs(2)
        assert run_many(specs, jobs=16) == run_many(specs, jobs=1)


class TestChunkedDispatch:
    def test_explicit_chunk_size_matches_serial(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        specs = _specs(5)
        serial = run_many(specs, jobs=1)
        for chunk in (1, 2, 5):
            assert run_many(specs, jobs=2, chunk_size=chunk) == serial

    def test_invalid_chunk_size_rejected(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        with pytest.raises(ValueError):
            run_many(_specs(3), jobs=2, chunk_size=0)

    def test_chunked_progress_counts_specs(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        specs = _specs(4)
        calls: list[tuple[int, int]] = []
        run_many(specs, jobs=2, chunk_size=2, progress=lambda d, t: calls.append((d, t)))
        # two chunks of two specs: done counts finished specs, not chunks
        assert sorted(d for d, _ in calls) == [2, 4]
        assert all(t == 4 for _, t in calls)

    def test_chunked_collect_pairs_in_order(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        specs = _specs(4)
        pairs = run_many(specs, jobs=2, chunk_size=3, collect=_collect_makespan)
        assert [r.makespan_us for r, _ in pairs] == [
            r.makespan_us for r in run_many(specs, jobs=1)
        ]
        for result, (makespan, machine_now) in pairs:
            assert result.makespan_us == makespan == machine_now

    def test_counters_are_per_run_not_per_worker(self):
        # Two specs executed back-to-back in ONE worker (same process, one
        # chunk): each RunResult's solver/profiling counters must describe
        # only its own run. A regression that accumulated them across the
        # worker's chunk would inflate the second run's counters.
        from repro.hw.bus import clear_shared_solve_cache
        from repro.parallel import _execute_chunk

        spec_a, spec_b = _specs(2)
        try:
            clear_shared_solve_cache()
            fresh_a = run_many([spec_a], jobs=1)[0]
            clear_shared_solve_cache()
            fresh_b = run_many([spec_b], jobs=1)[0]
            clear_shared_solve_cache()
            chunked = _execute_chunk([(0, spec_a, None), (1, spec_b, None)])
        finally:
            clear_shared_solve_cache()
        assert [i for i, _, _, _ in chunked] == [0, 1]
        for fresh, (_, result, _, _) in zip((fresh_a, fresh_b), chunked):
            assert result == fresh
            # Chunk-invariant counters: identical to an isolated run.
            # (bisection_steps and bus_shared_hits legitimately differ —
            # shared-cache warmth changes how equilibria are reached.)
            assert result.bus_solve_calls == fresh.bus_solve_calls
            assert result.bus_cache_hits == fresh.bus_cache_hits
            assert result.solve_skips == fresh.solve_skips
            assert result.lane_rebuilds == fresh.lane_rebuilds

    def test_shared_cache_reports_hits_without_changing_results(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        # one worker, one chunk: later specs replay the earlier specs'
        # equilibria from the shared cache; physics must be unchanged.
        spec = _specs(1)[0]
        specs = [spec, spec, spec]
        serial = run_many(specs, jobs=1)
        chunked = run_many(specs, jobs=2, chunk_size=3)
        assert chunked == serial
        assert sum(r.bus_shared_hits for r in chunked) > 0
        assert all(r.bus_shared_hits == 0 for r in serial)


class TestProgressNotes:
    def test_three_arg_callback_receives_fallback_note(self, monkeypatch):
        import repro.parallel as par

        monkeypatch.setattr(par, "fork_available", lambda: False)
        notes: list[str] = []
        calls: list[tuple[int, int]] = []

        def progress(done, total, note=None):
            calls.append((done, total))
            if note is not None:
                notes.append(note)

        results = run_many(_specs(2), jobs=4, progress=progress)
        assert len(results) == 2
        assert any("fork unavailable" in n for n in notes)
        assert (2, 2) in calls

    def test_two_arg_callback_unaffected_by_fallback(self, monkeypatch):
        import repro.parallel as par

        monkeypatch.setattr(par, "fork_available", lambda: False)
        calls: list[tuple[int, int]] = []
        run_many(_specs(2), jobs=4, progress=lambda d, t: calls.append((d, t)))
        assert calls == [(1, 2), (2, 2)]


class TestResultAndCancelHooks:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_on_result_sees_every_spec_with_wall_time(self, jobs):
        if jobs > 1 and not fork_available():
            pytest.skip("no fork on this platform")
        specs = _specs(3)
        seen: dict[int, tuple] = {}

        def on_result(index, result, wall_s):
            seen[index] = (result, wall_s)

        results = run_many(specs, jobs=jobs, on_result=on_result)
        assert sorted(seen) == [0, 1, 2]
        for index, (result, wall_s) in seen.items():
            assert result == results[index]
            assert wall_s > 0.0

    def test_on_result_composes_with_collect(self):
        specs = _specs(2)
        indices: list[int] = []
        pairs = run_many(
            specs, jobs=1, collect=_collect_makespan,
            on_result=lambda i, r, w: indices.append(i),
        )
        # on_result receives the bare RunResult; the return list pairs it.
        assert sorted(indices) == [0, 1]
        assert all(isinstance(p, tuple) for p in pairs)

    def test_cancel_serial_stops_between_specs(self):
        specs = _specs(4)
        done: list[int] = []

        def cancel():
            return len(done) >= 2  # stop after two completions

        results = run_many(
            specs, jobs=1, on_result=lambda i, r, w: done.append(i), cancel=cancel
        )
        assert done == [0, 1]
        assert results[0] is not None and results[1] is not None
        assert results[2] is None and results[3] is None

    def test_cancel_parallel_skips_unstarted_chunks(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        specs = _specs(6)
        completed: list[int] = []

        def cancel():
            return len(completed) >= 1  # cancel once anything lands

        results = run_many(
            specs, jobs=2, chunk_size=1,
            on_result=lambda i, r, w: completed.append(i),
            cancel=cancel,
        )
        # Finished chunks report; something must have been skipped but
        # everything reported as done is a real result.
        assert completed, "nothing completed before cancel"
        assert any(r is None for r in results)
        for index in completed:
            assert results[index] is not None

    def test_cancel_false_is_inert(self):
        specs = _specs(3)
        assert run_many(specs, jobs=1, cancel=lambda: False) == run_many(specs, jobs=1)

    def test_cancel_before_start_runs_nothing(self):
        results = run_many(_specs(3), jobs=1, cancel=lambda: True)
        assert results == [None, None, None]

    def test_on_result_delivered_before_worker_exception_raises(self):
        # Regression: a chunk failing mid-batch used to abandon the
        # still-running sibling chunks' results. The executor must drain
        # every dispatched chunk — delivering its results through
        # on_result — before re-raising the first failure.
        if not fork_available():
            pytest.skip("no fork on this platform")
        goods = _specs(4)
        doomed = SimulationSpec(
            targets=[goods[0].targets[0]], seed=1, max_time_us=1.0
        )  # too short to finish: SimulationError at execution time
        landed: list[int] = []
        with pytest.raises(SimulationError):
            run_many(
                [doomed] + goods, jobs=2, chunk_size=1,
                on_result=lambda i, r, w: landed.append(i),
            )
        assert sorted(landed) == [1, 2, 3, 4]  # every good spec landed


#: Tiny supervision policy: fast retries, fast deadline polls. The
#: ceiling stays generous — crash tests must never time out first.
_FAST_SUP = SupervisionConfig(
    max_attempts=2,
    timeout_floor_s=30.0,
    backoff_base_s=0.01,
    backoff_max_s=0.02,
    poll_s=0.01,
)


class TestSupervisionConfig:
    def test_timeout_before_observations_is_ceiling(self):
        sup = SupervisionConfig(timeout_ceiling_s=600.0)
        assert sup.timeout_for([]) == 600.0

    def test_timeout_derives_from_observed_walls(self):
        sup = SupervisionConfig(
            timeout_floor_s=1.0, timeout_ceiling_s=100.0, timeout_factor=8.0
        )
        assert sup.timeout_for([0.5, 2.0, 1.0]) == 16.0  # 8 x max
        assert sup.timeout_for([0.01]) == 1.0  # clamped to floor
        assert sup.timeout_for([50.0]) == 100.0  # clamped to ceiling

    def test_backoff_doubles_and_caps(self):
        sup = SupervisionConfig(backoff_base_s=0.1, backoff_max_s=0.5)
        assert sup.backoff_for(1) == pytest.approx(0.1)
        assert sup.backoff_for(2) == pytest.approx(0.2)
        assert sup.backoff_for(3) == pytest.approx(0.4)
        assert sup.backoff_for(4) == pytest.approx(0.5)  # capped

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"timeout_floor_s": 0.0},
        {"timeout_floor_s": 10.0, "timeout_ceiling_s": 5.0},
        {"timeout_factor": 0.0},
        {"backoff_base_s": -1.0},
        {"backoff_base_s": 1.0, "backoff_max_s": 0.5},
        {"poll_s": 0.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionConfig(**kwargs)


class TestSupervisedRunMany:
    """Crash/hang survival via the ``REPRO_CHAOS_*`` env hooks.

    The hooks live in the worker-side ``_execute`` and fire on the
    matching spec hash; forked workers inherit the monkeypatched
    environment from this process.
    """

    @pytest.fixture(autouse=True)
    def _need_fork(self):
        if not fork_available():
            pytest.skip("no fork on this platform")

    def test_fault_free_supervised_is_bit_identical(self):
        specs = _specs(4)
        serial = run_many(specs, jobs=1)
        assert run_many(specs, jobs=2, chunk_size=1, supervise=_FAST_SUP) == serial

    def test_crashing_spec_raises_typed_error_with_attribution(self, monkeypatch):
        specs = _specs(3)
        monkeypatch.setenv("REPRO_CHAOS_KILL_SPEC", specs[1].spec_hash())
        with pytest.raises(WorkerCrashError) as excinfo:
            run_many(specs, jobs=2, chunk_size=1, supervise=_FAST_SUP)
        assert excinfo.value.spec_index == 1
        assert excinfo.value.attempts == _FAST_SUP.max_attempts

    def test_siblings_land_despite_crasher(self, monkeypatch):
        # Crasher last: unfinished specs re-run in index order, so every
        # sibling is delivered (phase 1 or isolation) before the raise.
        specs = _specs(3)
        serial = run_many(specs, jobs=1)
        monkeypatch.setenv("REPRO_CHAOS_KILL_SPEC", specs[2].spec_hash())
        landed: dict[int, object] = {}
        with pytest.raises(WorkerCrashError):
            run_many(
                specs, jobs=2, chunk_size=1, supervise=_FAST_SUP,
                on_result=lambda i, r, w: landed.__setitem__(i, r),
            )
        assert sorted(landed) == [0, 1]  # both siblings, bit-identically
        assert all(landed[i] == serial[i] for i in landed)

    def test_hanging_spec_raises_timeout_error(self, monkeypatch):
        specs = _specs(2)
        monkeypatch.setenv("REPRO_CHAOS_HANG_SPEC", specs[1].spec_hash())
        sup = SupervisionConfig(
            max_attempts=2,
            timeout_floor_s=0.2,
            timeout_ceiling_s=0.5,
            backoff_base_s=0.01,
            backoff_max_s=0.02,
            poll_s=0.02,
        )
        with pytest.raises(RunTimeoutError) as excinfo:
            run_many(specs, jobs=2, chunk_size=1, supervise=sup)
        assert excinfo.value.spec_index == 1
        assert excinfo.value.attempts == 2
        assert excinfo.value.timeout_s <= 0.5

    def test_crash_once_retry_is_bit_identical(self, monkeypatch, tmp_path):
        specs = _specs(3)
        serial = run_many(specs, jobs=1)
        monkeypatch.setenv("REPRO_CHAOS_KILL_SPEC", specs[2].spec_hash())
        monkeypatch.setenv("REPRO_CHAOS_KILL_ONCE_DIR", str(tmp_path))
        results = run_many(specs, jobs=2, chunk_size=1, supervise=_FAST_SUP)
        assert results == serial  # the retried run is indistinguishable
        assert (tmp_path / f"{specs[2].spec_hash()}.kill").exists()

    def test_unsupervised_crash_raises_broken_pool(self, monkeypatch):
        # Without supervise, worker death stays a BrokenProcessPool —
        # opting out preserves the old contract.
        from concurrent.futures.process import BrokenProcessPool

        specs = _specs(2)
        monkeypatch.setenv("REPRO_CHAOS_KILL_SPEC", specs[0].spec_hash())
        with pytest.raises(BrokenProcessPool):
            run_many(specs, jobs=2, chunk_size=1)
