"""Engine stress coverage: lazy cancellation under heap churn, and
settle/fire interleaving when an advancer horizon coincides with a timer.

Complements tests/sim/test_engine.py with the ISSUE 2 satellite cases:
cancel-then-reschedule storms must keep ``pending_events`` exact (lazy
cancellation leaves dead entries in the heap but must not leak into the
live count), and ``run_until`` must fire a timer event landing exactly on
the advancer's horizon after settling the advancer to that instant.
"""

import math

from repro.sim.engine import Engine


class _FakeAdvancer:
    """Advancer with fixed transition times, recording every advance."""

    def __init__(self, transitions):
        self.transitions = sorted(transitions)
        self.advanced_to = []
        self.time = 0.0

    def horizon(self):
        for t in self.transitions:
            if t > self.time:
                return t
        return math.inf

    def advance_to(self, t):
        self.time = t
        self.advanced_to.append(t)


class TestCancelRescheduleStorm:
    def test_pending_events_exact_after_cancel(self):
        eng = Engine()
        h1 = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        assert eng.pending_events == 2
        h1.cancel()
        assert eng.pending_events == 1
        h1.cancel()  # double-cancel must not decrement twice
        assert eng.pending_events == 1

    def test_cancel_after_fire_does_not_underflow(self):
        eng = Engine()
        handle = eng.schedule_at(1.0, lambda: None)
        eng.run_until(2.0)
        assert eng.pending_events == 0
        handle.cancel()  # fired events are consumed; cancel is a no-op
        assert eng.pending_events == 0

    def test_storm_pending_count_stays_exact(self):
        eng = Engine()
        fired = []
        live = {}
        # 50 rounds of schedule-3 / cancel-2 / reschedule-1, never running:
        # the heap accumulates dead entries while the live count must track
        # exactly the survivors.
        for round_no in range(50):
            handles = [
                eng.schedule_at(100.0 + round_no + 0.1 * k, lambda r=round_no: fired.append(r))
                for k in range(3)
            ]
            handles[0].cancel()
            handles[1].cancel()
            replacement = eng.schedule_at(
                200.0 + round_no, lambda r=round_no: fired.append(-r)
            )
            live[round_no] = (handles[2], replacement)
        assert eng.pending_events == 100
        assert all(h.active and r.active for h, r in live.values())
        eng.run_until(300.0)
        assert eng.pending_events == 0
        assert len(fired) == 100

    def test_storm_interleaved_with_runs(self):
        eng = Engine()
        fired = []
        for round_no in range(20):
            keep = eng.schedule_after(1.0, lambda r=round_no: fired.append(r))
            drop = eng.schedule_after(1.5, lambda r=round_no: fired.append(1000 + r))
            drop.cancel()
            # re-use the freed slot at the same timestamp as the survivor
            eng.schedule_after(1.5, lambda r=round_no: fired.append(2000 + r))
            eng.run_until(eng.now + 2.0)
            assert not keep.active  # consumed by firing
            assert eng.pending_events == 0
        assert [f for f in fired if f < 1000] == list(range(20))
        assert [f for f in fired if f >= 2000] == [2000 + r for r in range(20)]
        assert not any(1000 <= f < 2000 for f in fired)

    def test_cancelled_storm_leaves_clean_heap(self):
        eng = Engine()
        handles = [eng.schedule_at(float(i), lambda: None) for i in range(1, 40)]
        for h in handles:
            h.cancel()
        assert eng.pending_events == 0
        assert eng.next_event_time() == math.inf
        eng.run_until(100.0)
        assert eng.now == 100.0

    def test_events_fired_counter(self):
        eng = Engine()
        for i in range(5):
            eng.schedule_at(float(i + 1), lambda: None)
        cancelled = eng.schedule_at(3.5, lambda: None)
        cancelled.cancel()
        eng.run_until(10.0)
        assert eng.events_fired == 5


class TestHorizonOnTimerEvent:
    def test_run_until_horizon_exactly_on_timer(self):
        # Advancer transition and timer event at the same instant: the
        # engine must settle the advancer to t=5 first, then fire the
        # timer at t=5 (callbacks observe a settled component).
        adv = _FakeAdvancer([5.0])
        eng = Engine()
        seen = []
        eng.schedule_at(5.0, lambda: seen.append(("timer", eng.now, adv.time)))
        eng.run_until(10.0, advancer=adv)
        assert seen == [("timer", 5.0, 5.0)]
        assert 5.0 in adv.advanced_to
        assert eng.now == 10.0

    def test_run_until_ends_exactly_on_shared_instant(self):
        # end_time == horizon == timer time: everything lands on t=5 and
        # the run must terminate (no livelock), having fired the event.
        adv = _FakeAdvancer([5.0])
        eng = Engine()
        seen = []
        eng.schedule_at(5.0, lambda: seen.append(eng.now))
        eng.run_until(5.0, advancer=adv)
        assert seen == [5.0]
        assert eng.now == 5.0
        assert adv.time == 5.0

    def test_batch_fire_settles_once_per_instant(self):
        # Three events at the same timestamp: one settle to t=4, then the
        # whole batch fires (the batch-fire half of the settle fast path).
        adv = _FakeAdvancer([])
        eng = Engine()
        order = []
        for k in range(3):
            eng.schedule_at(4.0, lambda k=k: order.append(k))
        eng.run_until(6.0, advancer=adv)
        assert order == [0, 1, 2]
        assert adv.advanced_to.count(4.0) == 1
