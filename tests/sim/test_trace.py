"""Unit tests for the trace recorder."""

import pytest

from repro.sim.trace import TraceRecorder


class TestRecording:
    def test_records_in_order(self):
        tr = TraceRecorder()
        tr.record(1.0, "a.b", x=1)
        tr.record(2.0, "a.c", x=2)
        assert [r.category for r in tr] == ["a.b", "a.c"]

    def test_disabled_records_nothing(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "a.b")
        assert len(tr) == 0
        assert tr.count() == 0

    def test_payload_preserved(self):
        tr = TraceRecorder()
        tr.record(1.0, "x", cpu=3, tid=7)
        rec = list(tr)[0]
        assert rec.data == {"cpu": 3, "tid": 7}
        assert rec.time == 1.0

    def test_capacity_evicts_oldest(self):
        tr = TraceRecorder(capacity=3)
        for i in range(5):
            tr.record(float(i), "x", i=i)
        assert [r.data["i"] for r in tr] == [2, 3, 4]

    def test_counts_survive_eviction(self):
        tr = TraceRecorder(capacity=2)
        for i in range(10):
            tr.record(float(i), "x")
        assert tr.count("x") == 10

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestFiltering:
    def test_category_allowlist(self):
        tr = TraceRecorder(categories=["sched."])
        tr.record(1.0, "sched.dispatch")
        tr.record(2.0, "manager.quantum")
        assert [r.category for r in tr] == ["sched.dispatch"]
        # counts still exact for filtered-out categories
        assert tr.count("manager.") == 1

    def test_records_prefix_query(self):
        tr = TraceRecorder()
        tr.record(1.0, "sched.dispatch", cpu=0)
        tr.record(2.0, "sched.migrate", cpu=1)
        tr.record(3.0, "thread.exit")
        assert len(tr.records("sched.")) == 2

    def test_records_predicate(self):
        tr = TraceRecorder()
        tr.record(1.0, "sched.dispatch", cpu=0)
        tr.record(2.0, "sched.dispatch", cpu=1)
        assert len(tr.records("sched.", lambda r: r.data["cpu"] == 1)) == 1

    def test_count_prefix(self):
        tr = TraceRecorder()
        tr.record(1.0, "a.b")
        tr.record(2.0, "a.c")
        tr.record(3.0, "b.a")
        assert tr.count("a.") == 2
        assert tr.count() == 3

    def test_clear(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        tr.clear()
        assert len(tr) == 0
        assert tr.count() == 0

    def test_empty_recorder_is_usable_despite_len_zero(self):
        # Regression: `trace or default` replaced empty recorders because
        # __len__ == 0 makes them falsy. The machine must keep the instance.
        from repro.config import MachineConfig
        from repro.hw.machine import Machine
        from repro.sim.engine import Engine

        tr = TraceRecorder()
        machine = Machine(MachineConfig(), Engine(), tr)
        assert machine.trace is tr
