"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import EventPriority


class TestClock:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_custom_start(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_run_until_advances(self):
        eng = Engine()
        eng.run_until(100.0)
        assert eng.now == 100.0

    def test_run_until_past_raises(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.run_until(5.0)


class TestScheduling:
    def test_event_fires_at_time(self):
        eng = Engine()
        fired = []
        eng.schedule_at(7.0, lambda: fired.append(eng.now))
        eng.run_until(10.0)
        assert fired == [7.0]

    def test_schedule_after(self):
        eng = Engine()
        fired = []
        eng.schedule_after(3.0, lambda: fired.append(eng.now))
        eng.run_until(10.0)
        assert fired == [3.0]

    def test_past_event_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_after(-1.0, lambda: None)

    def test_infinite_time_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_at(math.inf, lambda: None)

    def test_fifo_among_equal_events(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.schedule_at(1.0, lambda i=i: order.append(i))
        eng.run_until(2.0)
        assert order == [0, 1, 2, 3, 4]

    def test_priority_order_at_same_instant(self):
        eng = Engine()
        order = []
        eng.schedule_at(1.0, lambda: order.append("kernel"), priority=EventPriority.KERNEL)
        eng.schedule_at(1.0, lambda: order.append("sample"), priority=EventPriority.SAMPLE)
        eng.schedule_at(1.0, lambda: order.append("manager"), priority=EventPriority.MANAGER)
        eng.run_until(2.0)
        assert order == ["sample", "manager", "kernel"]

    def test_event_scheduled_during_dispatch_same_instant_fires(self):
        eng = Engine()
        order = []

        def outer():
            order.append("outer")
            eng.schedule_at(eng.now, lambda: order.append("inner"))

        eng.schedule_at(1.0, outer)
        eng.run_until(2.0)
        assert order == ["outer", "inner"]

    def test_cancellation(self):
        eng = Engine()
        fired = []
        handle = eng.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        eng.run_until(2.0)
        assert fired == []
        assert not handle.active

    def test_double_cancel_is_noop(self):
        eng = Engine()
        handle = eng.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()

    def test_pending_events_counts_live(self):
        eng = Engine()
        h1 = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        assert eng.pending_events == 2
        h1.cancel()
        eng.run_until(3.0)

    def test_next_event_time(self):
        eng = Engine()
        eng.schedule_at(5.0, lambda: None)
        eng.schedule_at(3.0, lambda: None)
        assert eng.next_event_time() == 3.0

    def test_next_event_time_empty(self):
        assert Engine().next_event_time() == math.inf

    def test_next_event_skips_cancelled(self):
        eng = Engine()
        h = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(4.0, lambda: None)
        h.cancel()
        assert eng.next_event_time() == 4.0


class TestEventLedger:
    """pending == scheduled − fired − cancelled, exactly, at all times."""

    def _balanced(self, eng):
        return (
            eng.pending_events
            == eng.events_scheduled - eng.events_fired - eng.events_cancelled
        )

    def test_ledger_holds_inside_callbacks(self):
        # Regression: fired-event counting used to be batched at the end of
        # a dispatch round, so the ledger was off by the number of events
        # already dispatched whenever a same-instant callback observed it
        # (the audit layer does exactly that).
        eng = Engine()
        observed = []
        for _ in range(3):
            eng.schedule_at(5.0, lambda: observed.append(self._balanced(eng)))
        eng.run_until(10.0)
        assert observed == [True, True, True]

    def test_ledger_holds_with_cancellations_and_chains(self):
        eng = Engine()
        observed = []

        def chained():
            observed.append(self._balanced(eng))
            eng.schedule_at(eng.now, lambda: observed.append(self._balanced(eng)))
            doomed = eng.schedule_at(eng.now + 1.0, lambda: None)
            doomed.cancel()
            observed.append(self._balanced(eng))

        eng.schedule_at(2.0, chained)
        eng.run_until(5.0)
        assert observed and all(observed)
        assert self._balanced(eng)
        assert eng.events_cancelled == 1


class _FakeAdvancer:
    """Advancer that transitions at fixed times and records advances."""

    def __init__(self, transitions):
        self.transitions = sorted(transitions)
        self.advanced_to = []
        self.time = 0.0

    def horizon(self):
        for t in self.transitions:
            if t > self.time:
                return t
        return math.inf

    def advance_to(self, t):
        self.time = t
        self.advanced_to.append(t)


class TestRunWithAdvancer:
    def test_stops_at_horizons(self):
        eng = Engine()
        adv = _FakeAdvancer([2.0, 5.0])
        eng.schedule_at(10.0, lambda: None)
        eng.run(advancer=adv)
        assert 2.0 in adv.advanced_to and 5.0 in adv.advanced_to
        assert eng.now == 10.0

    def test_quiescent_returns(self):
        eng = Engine()
        adv = _FakeAdvancer([])
        eng.run(advancer=adv)
        assert eng.now == 0.0

    def test_stop_predicate(self):
        eng = Engine()
        count = []

        def tick():
            count.append(1)
            eng.schedule_after(1.0, tick)

        eng.schedule_after(1.0, tick)
        eng.run(stop=lambda: len(count) >= 5)
        assert len(count) == 5

    def test_max_time_guard(self):
        eng = Engine()

        def forever():
            eng.schedule_after(10.0, forever)

        eng.schedule_after(10.0, forever)
        with pytest.raises(SimulationError):
            eng.run(max_time=55.0)

    def test_run_until_settles_advancer_between_events(self):
        eng = Engine()
        adv = _FakeAdvancer([1.5])
        eng.schedule_at(1.0, lambda: None)
        eng.run_until(2.0, advancer=adv)
        # advancer settled at the event time, its own horizon, and the end
        assert adv.advanced_to == [1.0, 1.5, 2.0]
