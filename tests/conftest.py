"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BusConfig, CacheConfig, LinuxSchedConfig, MachineConfig, ManagerConfig
from repro.hw.machine import Machine
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.patterns import ConstantPattern


@pytest.fixture
def engine() -> Engine:
    """A fresh engine at t=0."""
    return Engine()


@pytest.fixture
def machine(engine: Engine) -> Machine:
    """A default 4-CPU paper machine with tracing enabled."""
    return Machine(MachineConfig(), engine, TraceRecorder())


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


def make_thread(machine: Machine, rate: float = 5.0, work: float = 10_000.0, **kw):
    """Convenience: add a constant-rate thread."""
    pattern = ConstantPattern(rate).bind(np.random.default_rng(0))
    return machine.add_thread(f"t{rate}", pattern, work, **kw)


@pytest.fixture
def quick_manager_config() -> ManagerConfig:
    """A small manager quantum for fast multi-quantum tests."""
    return ManagerConfig(quantum_us=20_000.0)


@pytest.fixture
def quick_linux_config() -> LinuxSchedConfig:
    """A fast-ticking kernel config for unit tests."""
    return LinuxSchedConfig(tick_us=1_000.0)


@pytest.fixture
def tiny_machine_config() -> MachineConfig:
    """A 2-CPU machine for compact scheduling tests."""
    return MachineConfig(n_cpus=2)
