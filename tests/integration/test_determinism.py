"""Bit-identical reproducibility across runs with the same seed."""

import pytest

from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.experiments.base import SimulationSpec, run_simulation
from repro.workloads.microbench import bbma_spec, nbbma_spec
from repro.workloads.suites import paper_app


def _spec(scheduler, seed):
    return SimulationSpec(
        targets=[paper_app("Raytrace").scaled(0.05), paper_app("Raytrace").scaled(0.05)],
        background=[bbma_spec(), nbbma_spec()],
        scheduler=scheduler,
        seed=seed,
    )


class TestDeterminism:
    @pytest.mark.parametrize(
        "make_scheduler",
        [lambda: "linux", lambda: "gang", lambda: LatestQuantumPolicy(), lambda: QuantaWindowPolicy()],
        ids=["linux", "gang", "latest", "window"],
    )
    def test_same_seed_same_result(self, make_scheduler):
        a = run_simulation(_spec(make_scheduler(), seed=7))
        b = run_simulation(_spec(make_scheduler(), seed=7))
        assert a.mean_target_turnaround_us() == b.mean_target_turnaround_us()
        assert a.total_transactions == b.total_transactions
        assert a.context_switches == b.context_switches
        assert a.migrations == b.migrations

    def test_different_seed_differs(self):
        # bursty Raytrace + randomized kernel: different seeds must diverge
        a = run_simulation(_spec("linux", seed=1))
        b = run_simulation(_spec("linux", seed=2))
        assert a.mean_target_turnaround_us() != b.mean_target_turnaround_us()

    def test_seed_isolation_between_policy_runs(self):
        # running one simulation must not perturb the next (fresh registries)
        first = run_simulation(_spec(QuantaWindowPolicy(), seed=3))
        _ = run_simulation(_spec(QuantaWindowPolicy(), seed=99))
        again = run_simulation(_spec(QuantaWindowPolicy(), seed=3))
        assert first.mean_target_turnaround_us() == again.mean_target_turnaround_us()
