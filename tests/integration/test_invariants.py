"""Cross-module invariants checked on randomized whole-system runs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.experiments.base import SimulationSpec, run_simulation_with_handle
from repro.workloads.synth import random_workload


def _run_random(seed: int, scheduler):
    rng = np.random.default_rng(seed)
    n_apps = int(rng.integers(2, 6))
    specs = random_workload(rng, n_apps=n_apps, n_cpus=4, work_range_us=(20_000.0, 80_000.0))
    spec = SimulationSpec(targets=specs, scheduler=scheduler, seed=seed, timeline_period_us=5_000.0)
    return run_simulation_with_handle(spec)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_linux_conservation_and_completion(seed):
    result, handle = _run_random(seed, "linux")
    machine = handle.machine
    # every target finished with exactly its work done
    for app in handle.target_apps:
        for t in app.threads:
            assert t.finished
            assert t.work_done == pytest.approx(t.work_total, abs=1e-3)
    # counters match thread accounting
    for t in machine.threads():
        snap = machine.counters.read(t.tid)
        assert snap.cycles_us == pytest.approx(t.run_time_us, rel=1e-9, abs=1e-6)
        assert snap.work_us == pytest.approx(t.work_done, rel=1e-9, abs=1e-3)
    # total run time never exceeds cpus x makespan
    total_run = sum(t.run_time_us for t in machine.threads())
    assert total_run <= machine.n_cpus * result.makespan_us * (1 + 1e-9)
    # bus utilisation samples within [0, 1]
    for p in handle.timeline.points:
        assert 0.0 <= p.utilisation <= 1.0


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_policy_no_starvation(seed):
    pol = QuantaWindowPolicy()
    result, handle = _run_random(seed, pol)
    # all targets finished = nobody starved (run_simulation would hang or
    # hit max_time otherwise); additionally every app accumulated run time
    for app in handle.target_apps:
        assert all(t.run_time_us > 0 for t in app.threads)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_policy_gang_selection_width(seed):
    pol = LatestQuantumPolicy()
    result, handle = _run_random(seed, pol)
    machine = handle.machine
    # Every manager decision fits the machine. The packer sees *live*
    # widths (a job shrinks as its threads finish), which the quantum
    # record now carries — summing static app.n_threads here would
    # false-positive once any selected app has partially finished.
    size_of = {app.app_id: app.n_threads for app in handle.apps}
    for rec in machine.trace.records("manager.quantum"):
        widths = rec.data["widths"]
        assert sum(widths) <= machine.n_cpus
        for app_id, width in zip(rec.data["selected"], widths):
            assert 1 <= width <= size_of[app_id]


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_no_thread_on_two_cpus_ever(seed):
    result, handle = _run_random(seed, "gang")
    # structural invariant maintained by the machine: spot-check final state
    machine = handle.machine
    seen = [c.tid for c in machine.cpus if c.tid is not None]
    assert len(seen) == len(set(seen))
    # and dispatch counts are consistent with trace records
    total_dispatch = sum(t.dispatch_count for t in machine.threads())
    assert total_dispatch == machine.trace.count("sched.dispatch") + machine.trace.count(
        "sched.migrate"
    )
