"""Dynamic job arrival tests: the open-system mode of the CPU manager."""

import pytest

from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.errors import ConfigError
from repro.experiments.base import SimulationSpec, run_simulation, run_simulation_with_handle
from repro.workloads.base import ApplicationSpec
from repro.workloads.microbench import nbbma_spec
from repro.workloads.patterns import ConstantPattern
from repro.workloads.suites import paper_app


def _app(rate=3.0, work=60_000.0, threads=2, name="dyn"):
    return ApplicationSpec(
        name=name,
        n_threads=threads,
        work_per_thread_us=work,
        pattern=ConstantPattern(rate),
        footprint_lines=512.0,
    )


class TestArrivalsUnderLinux:
    def test_arriving_jobs_complete(self):
        spec = SimulationSpec(
            targets=[_app(name="first")],
            arrivals=[(20_000.0, _app(name="second")), (40_000.0, _app(name="third"))],
            scheduler="linux",
            seed=3,
        )
        result, handle = run_simulation_with_handle(spec)
        assert len(handle.target_apps) == 3
        assert all(a.finished for a in handle.target_apps)

    def test_arrival_after_static_targets_finish(self):
        # the run must not stop before the late job even arrives
        spec = SimulationSpec(
            targets=[_app(work=5_000.0, name="quick")],
            arrivals=[(50_000.0, _app(name="late"))],
            scheduler="linux",
            seed=3,
        )
        result, handle = run_simulation_with_handle(spec)
        late = handle.target_apps[-1]
        assert late.name == "late"
        assert late.finished
        assert result.makespan_us > 50_000.0

    def test_arrivals_counted_in_results(self):
        spec = SimulationSpec(
            targets=[_app(name="a")],
            arrivals=[(10_000.0, _app(name="b"))],
            scheduler="linux",
            seed=3,
        )
        result = run_simulation(spec)
        assert {a.name for a in result.apps} >= {"a", "b"}


class TestArrivalsUnderManager:
    def test_manager_connects_arrivals(self):
        spec = SimulationSpec(
            targets=[paper_app("CG").scaled(0.05)],
            background=[nbbma_spec()] * 2,
            arrivals=[(30_000.0, paper_app("Barnes").scaled(0.05))],
            scheduler=QuantaWindowPolicy(),
            seed=3,
        )
        result, handle = run_simulation_with_handle(spec)
        assert all(a.finished for a in handle.target_apps)
        # the arrival went through the connection protocol
        assert handle.machine.trace.count("workload.arrival") == 1

    def test_no_starvation_with_churn(self):
        arrivals = [
            (float(10_000 * (i + 1)), _app(rate=float(2 + 3 * (i % 3)), name=f"wave{i}"))
            for i in range(6)
        ]
        spec = SimulationSpec(
            targets=[_app(name="base")],
            background=[nbbma_spec()],
            arrivals=arrivals,
            scheduler=LatestQuantumPolicy(),
            seed=9,
        )
        result, handle = run_simulation_with_handle(spec)
        assert len(handle.target_apps) == 7
        assert all(a.finished for a in handle.target_apps)

    def test_arrival_estimates_learned(self):
        spec = SimulationSpec(
            targets=[_app(name="early", work=400_000.0)],
            arrivals=[(50_000.0, _app(rate=8.0, name="late", work=300_000.0))],
            scheduler=QuantaWindowPolicy(),
            seed=3,
        )
        result, handle = run_simulation_with_handle(spec)
        late = next(a for a in handle.target_apps if a.name == "late")
        desc = handle.manager.arena.descriptor(late.app_id)
        assert len(desc.samples) >= 2  # it published after connecting


class TestArrivalValidation:
    def test_static_schedulers_reject_arrivals(self):
        for sched in ("dedicated", "gang"):
            with pytest.raises(ConfigError):
                run_simulation(
                    SimulationSpec(
                        targets=[_app()],
                        arrivals=[(1_000.0, _app())],
                        scheduler=sched,
                    )
                )

    def test_negative_arrival_time_rejected(self):
        with pytest.raises(ConfigError):
            run_simulation(
                SimulationSpec(
                    targets=[_app()],
                    arrivals=[(-1.0, _app())],
                    scheduler="linux",
                )
            )

    def test_arrivals_only_workload_allowed(self):
        spec = SimulationSpec(
            targets=[],
            arrivals=[(1_000.0, _app())],
            scheduler="linux",
            seed=1,
        )
        result = run_simulation(spec)
        assert result.makespan_us > 1_000.0

    def test_deterministic(self):
        def run():
            return run_simulation(
                SimulationSpec(
                    targets=[_app(name="x")],
                    arrivals=[(25_000.0, _app(name="y"))],
                    scheduler=QuantaWindowPolicy(),
                    seed=17,
                )
            ).makespan_us

        assert run() == run()
