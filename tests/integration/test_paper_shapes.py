"""Qualitative reproduction checks: the paper's headline claims, small scale.

These tests assert the *shape* of the results — who wins, in which
direction, roughly by how much — not absolute numbers. They are the
regression net for the calibration: if a model change flips one of the
paper's findings, a test here fails.
"""

import pytest

from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.experiments.base import SimulationSpec, run_simulation, solo_run
from repro.metrics.stats import improvement_percent
from repro.workloads.microbench import bbma_spec, nbbma_spec
from repro.workloads.suites import paper_app

_SCALE = 0.1


def _fig2_cell(app_name, background, scheduler, seed=42):
    app = paper_app(app_name).scaled(_SCALE)
    spec = SimulationSpec(
        targets=[app, app], background=background, scheduler=scheduler, seed=seed
    )
    return run_simulation(spec).mean_target_turnaround_us()


class TestSection3Claims:
    def test_bus_saturation_causes_up_to_threefold_slowdown(self):
        # "bus saturation can cause an up to almost three-fold slowdown"
        app = paper_app("CG").scaled(_SCALE)
        solo = solo_run(app).mean_target_turnaround_us()
        sat = run_simulation(
            SimulationSpec(
                targets=[app],
                background=[bbma_spec(), bbma_spec()],
                scheduler="dedicated",
                dedicated_migration_interval_us=250_000.0,
                seed=42,
            )
        ).mean_target_turnaround_us()
        assert 1.7 < sat / solo < 3.2

    def test_nbbma_is_free(self):
        # "both the bus transactions rate and the execution time ... are
        # almost identical to those observed during the uniprogrammed
        # execution"
        app = paper_app("MG").scaled(_SCALE)
        solo = solo_run(app).mean_target_turnaround_us()
        with_nbbma = run_simulation(
            SimulationSpec(
                targets=[app],
                background=[nbbma_spec(), nbbma_spec()],
                scheduler="dedicated",
                dedicated_migration_interval_us=250_000.0,
                seed=42,
            )
        ).mean_target_turnaround_us()
        assert with_nbbma / solo == pytest.approx(1.0, abs=0.06)

    def test_slowdown_without_processor_sharing(self):
        # the Figure 1 point: degradation happens with zero CPU contention
        app = paper_app("SP").scaled(_SCALE)
        solo = solo_run(app).mean_target_turnaround_us()
        pair = run_simulation(
            SimulationSpec(targets=[app, app], scheduler="dedicated",
                           dedicated_migration_interval_us=250_000.0, seed=42)
        ).mean_target_turnaround_us()
        assert pair / solo > 1.15


class TestSection5Claims:
    def test_policies_beat_linux_on_saturated_bus(self):
        # Set A: both policies improve the demanding applications
        bg = [bbma_spec()] * 4
        linux = _fig2_cell("CG", bg, "linux")
        for policy in (LatestQuantumPolicy(), QuantaWindowPolicy()):
            t = _fig2_cell("CG", bg, policy)
            assert improvement_percent(linux, t) > 10.0

    def test_policies_pair_high_with_low_in_set_b(self):
        # Set B: policies avoid co-running two high-bandwidth instances
        bg = [nbbma_spec()] * 4
        linux = _fig2_cell("MG", bg, "linux")
        window = _fig2_cell("MG", bg, QuantaWindowPolicy())
        assert improvement_percent(linux, window) > 5.0

    def test_window_more_stable_than_latest_on_bursty_app(self):
        # The Raytrace story: Latest Quantum overreacts to bursts; the
        # Quanta Window is the stable one (paper: -19% vs -1% in set B).
        # Needs runs long enough (several burst dwells x several quanta)
        # for the estimators to diverge, hence the larger scale.
        app = paper_app("Raytrace").scaled(0.5)
        bg = [nbbma_spec()] * 4
        diffs = []
        for seed in (1, 2, 7, 42, 101):
            def cell(scheduler):
                spec = SimulationSpec(
                    targets=[app, app], background=bg, scheduler=scheduler, seed=seed
                )
                return run_simulation(spec).mean_target_turnaround_us()

            linux = cell("linux")
            imp_latest = improvement_percent(linux, cell(LatestQuantumPolicy()))
            imp_window = improvement_percent(linux, cell(QuantaWindowPolicy()))
            diffs.append(imp_window - imp_latest)
        # On average the window estimator wins, and it never loses badly.
        assert sum(diffs) / len(diffs) > 1.5
        assert min(diffs) > -5.0

    def test_mixed_set_improves(self):
        bg = [bbma_spec(), bbma_spec(), nbbma_spec(), nbbma_spec()]
        linux = _fig2_cell("Barnes", bg, "linux")
        window = _fig2_cell("Barnes", bg, QuantaWindowPolicy())
        assert improvement_percent(linux, window) > 0.0


class TestManagerOverheadClaim:
    def test_manager_overhead_bounded(self):
        # "The overhead introduced by the CPU manager ... is at most 4.5%":
        # managing a workload that needs no management (one app alone)
        # must cost only a few percent vs the dedicated run.
        app = paper_app("Volrend").scaled(_SCALE)
        alone = solo_run(app).mean_target_turnaround_us()
        managed = run_simulation(
            SimulationSpec(targets=[app], scheduler=QuantaWindowPolicy(), seed=42)
        ).mean_target_turnaround_us()
        overhead = (managed - alone) / alone
        assert overhead < 0.05
