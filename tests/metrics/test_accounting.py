"""Run-result collection tests."""

import pytest

from repro.experiments.base import SimulationSpec, run_simulation
from repro.metrics.accounting import AppResult, RunResult
from repro.workloads.base import ApplicationSpec
from repro.workloads.microbench import bbma_spec
from repro.workloads.patterns import ConstantPattern


def _app(name="target", rate=2.0, work=50_000.0, threads=2):
    return ApplicationSpec(
        name=name,
        n_threads=threads,
        work_per_thread_us=work,
        pattern=ConstantPattern(rate),
        footprint_lines=256.0,
    )


class TestCollectRunResult:
    def test_targets_and_background_separated(self):
        result = run_simulation(
            SimulationSpec(
                targets=[_app()],
                background=[bbma_spec()],
                scheduler="dedicated",
                trace=False,
            )
        )
        targets = result.targets()
        assert len(targets) == 1
        assert targets[0].name == "target"
        assert len(result.apps) == 2

    def test_turnarounds_recorded(self):
        result = run_simulation(
            SimulationSpec(targets=[_app()], scheduler="dedicated", trace=False)
        )
        assert result.mean_target_turnaround_us() > 0
        assert result.makespan_us == pytest.approx(result.mean_target_turnaround_us())

    def test_workload_rate(self):
        result = run_simulation(
            SimulationSpec(targets=[_app(rate=3.0)], scheduler="dedicated", trace=False)
        )
        # 2 threads x 3 tx/us, plus cold-start refills
        assert result.workload_rate_txus == pytest.approx(6.0, rel=0.1)

    def test_transactions_sum_over_apps(self):
        result = run_simulation(
            SimulationSpec(targets=[_app()], background=[bbma_spec()], scheduler="dedicated", trace=False)
        )
        assert result.total_transactions == pytest.approx(
            sum(a.transactions for a in result.apps)
        )

    def test_mean_rate_txus_property(self):
        app = AppResult(
            name="x", app_id=1, turnaround_us=None, transactions=100.0,
            run_time_us=50.0, work_done_us=40.0, migrations=0, dispatches=1,
        )
        assert app.mean_rate_txus == 2.0
        idle = AppResult(
            name="y", app_id=2, turnaround_us=None, transactions=0.0,
            run_time_us=0.0, work_done_us=0.0, migrations=0, dispatches=0,
        )
        assert idle.mean_rate_txus == 0.0

    def test_unfinished_targets_raise_on_mean(self):
        r = RunResult(
            makespan_us=10.0,
            apps=(AppResult("t", 1, None, 0.0, 0.0, 0.0, 0, 0),),
            target_names=("t",),
            total_transactions=0.0,
            context_switches=0,
            migrations=0,
            cpu_idle_us=0.0,
        )
        with pytest.raises(ValueError):
            r.mean_target_turnaround_us()
