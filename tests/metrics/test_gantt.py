"""Gantt renderer tests."""

import pytest

from repro.core.policies import QuantaWindowPolicy
from repro.experiments.base import SimulationSpec, run_simulation_with_handle
from repro.metrics.gantt import render_gantt
from repro.workloads.base import ApplicationSpec
from repro.workloads.microbench import nbbma_spec
from repro.workloads.patterns import ConstantPattern


def _run(scheduler="linux", seed=3, trace=True):
    app = ApplicationSpec(
        name="app",
        n_threads=2,
        work_per_thread_us=60_000.0,
        pattern=ConstantPattern(4.0),
        footprint_lines=256.0,
    )
    spec = SimulationSpec(
        targets=[app, app],
        background=[nbbma_spec()] * 2,
        scheduler=scheduler,
        seed=seed,
        trace=trace,
    )
    return run_simulation_with_handle(spec)


class TestRenderGantt:
    @pytest.fixture(scope="class")
    def handle(self):
        _, handle = _run()
        return handle

    def test_row_per_cpu(self, handle):
        chart = render_gantt(handle.machine, width=40)
        assert len(chart.rows) == handle.machine.n_cpus
        assert all(len(row) == 40 for row in chart.rows)

    def test_cells_are_known_symbols(self, handle):
        chart = render_gantt(handle.machine, width=40)
        allowed = set(chart.legend) | {"."}
        for row in chart.rows:
            assert set(row) <= allowed

    def test_legend_covers_applications(self, handle):
        chart = render_gantt(handle.machine, width=40)
        labels = set(chart.legend.values())
        assert any(label.startswith("app#") for label in labels)
        assert any(label.startswith("nBBMA#") for label in labels)

    def test_str_renders(self, handle):
        out = str(render_gantt(handle.machine, width=40))
        assert "cpu0 |" in out
        assert "ms" in out

    def test_window_selection(self, handle):
        full = render_gantt(handle.machine, width=40)
        part = render_gantt(handle.machine, width=40, t0_us=0.0, t1_us=full.t1_us / 2)
        assert part.t1_us < full.t1_us

    def test_empty_window_rejected(self, handle):
        with pytest.raises(ValueError):
            render_gantt(handle.machine, t0_us=10.0, t1_us=10.0)

    def test_narrow_width_rejected(self, handle):
        with pytest.raises(ValueError):
            render_gantt(handle.machine, width=2)

    def test_untraced_machine_rejected(self):
        _, handle = _run(trace=False)
        with pytest.raises(ValueError):
            render_gantt(handle.machine)

    def test_gang_policy_shows_gang_structure(self):
        # under the manager, both threads of an app occupy CPUs in the
        # same time columns (gang): check column-wise co-occurrence
        _, handle = _run(scheduler=QuantaWindowPolicy())
        chart = render_gantt(handle.machine, width=60)
        app_syms = [s for s, label in chart.legend.items() if label.startswith("app#")]
        for sym in app_syms:
            for col in range(60):
                col_syms = [row[col] for row in chart.rows]
                count = col_syms.count(sym)
                # a gang app's symbol appears 0 or 2 times per column
                # (transitions may momentarily show 1; allow but rare)
                assert count in (0, 1, 2)
