"""Streaming-accumulator tests: P² envelope, collapsing batch means,
t-fallback accuracy, and streamed-vs-exact summary agreement."""

import math
import random

import numpy as np
import pytest

from repro.metrics.queueing import (
    DynamicStats,
    JobRecord,
    batch_means_ci,
    summarize_queueing,
)
from repro.metrics.streaming import (
    P2_RANK_TOLERANCE,
    REPORTED_QUANTILES,
    P2Quantile,
    StreamingBatchMeans,
    StreamingQueueingStats,
    Welford,
    _t_fallback,
    exact_quantile,
)


class TestTFallback:
    def test_exact_at_df_1_and_2(self):
        # Closed forms: Cauchy quantile at df=1, algebraic at df=2.
        assert _t_fallback(1, 0.95) == pytest.approx(12.7062, rel=1e-4)
        assert _t_fallback(2, 0.95) == pytest.approx(4.30265, rel=1e-4)

    @pytest.mark.parametrize("df", [3, 5, 9])
    @pytest.mark.parametrize("confidence", [0.90, 0.95, 0.99])
    def test_within_one_percent_of_scipy(self, df, confidence):
        scipy_stats = pytest.importorskip("scipy.stats")
        exact = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df))
        approx = _t_fallback(df, confidence)
        assert abs(approx - exact) / exact < 0.01

    def test_respects_df(self):
        # The old fallback returned the same constant for every df.
        values = [_t_fallback(df, 0.95) for df in (3, 5, 9, 30)]
        assert values == sorted(values, reverse=True)
        assert values[0] > 3.0 > values[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            _t_fallback(0, 0.95)
        with pytest.raises(ValueError):
            _t_fallback(5, 1.0)


class TestExactQuantile:
    def test_matches_numpy(self):
        rng = random.Random(3)
        values = sorted(rng.uniform(0, 100) for _ in range(37))
        for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
            assert exact_quantile(values, q) == pytest.approx(
                float(np.quantile(values, q))
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)
        with pytest.raises(ValueError):
            exact_quantile([1.0], 1.5)


class TestWelford:
    def test_matches_two_pass(self):
        rng = random.Random(11)
        values = [rng.gauss(50, 7) for _ in range(200)]
        w = Welford()
        for v in values:
            w.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert w.mean == pytest.approx(mean)
        assert w.variance() == pytest.approx(var)
        assert w.std() == pytest.approx(math.sqrt(var))

    def test_none_until_two(self):
        w = Welford()
        assert w.variance() is None
        w.add(3.0)
        assert w.variance() is None
        w.add(4.0)
        assert w.variance() == pytest.approx(0.5)


class TestP2Quantile:
    def test_exact_up_to_five_observations(self):
        sketch = P2Quantile(0.5)
        assert sketch.value() is None
        seen = []
        for x in [9.0, 2.0, 7.0, 4.0, 5.0]:
            sketch.add(x)
            seen.append(x)
            assert sketch.value() == pytest.approx(
                exact_quantile(sorted(seen), 0.5)
            )

    @pytest.mark.parametrize("q", REPORTED_QUANTILES)
    @pytest.mark.parametrize(
        "sampler",
        [
            lambda rng: rng.random(),
            lambda rng: rng.expovariate(1.0),
            lambda rng: rng.lognormvariate(0.0, 1.0),
        ],
        ids=["uniform", "exponential", "lognormal"],
    )
    def test_rank_envelope(self, q, sampler):
        """Estimate stays between the exact q±tolerance empirical quantiles."""
        rng = random.Random(hash((q, id(sampler))) % 2**31)
        sketch = P2Quantile(q)
        values = []
        for _ in range(5000):
            x = sampler(rng)
            sketch.add(x)
            values.append(x)
        values.sort()
        lo = exact_quantile(values, max(0.0, q - P2_RANK_TOLERANCE))
        hi = exact_quantile(values, min(1.0, q + P2_RANK_TOLERANCE))
        assert lo <= sketch.value() <= hi

    def test_rejects_non_finite(self):
        sketch = P2Quantile(0.95)
        with pytest.raises(ValueError):
            sketch.add(math.nan)
        with pytest.raises(ValueError):
            sketch.add(math.inf)

    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestStreamingBatchMeans:
    def test_buffered_regime_bit_identical(self):
        """Below the spill threshold the stream IS batch_means_ci."""
        rng = random.Random(5)
        values = [rng.uniform(1, 100) for _ in range(37)]
        sbm = StreamingBatchMeans(n_batches=10)
        for v in values:
            sbm.add(v)
        assert sbm.result() == batch_means_ci(values, n_batches=10)
        assert sbm.mean() == sum(values) / len(values)

    def test_collapsed_regime_mean_bit_identical(self):
        rng = random.Random(6)
        values = [rng.expovariate(0.01) for _ in range(10_000)]
        sbm = StreamingBatchMeans(n_batches=10)
        for v in values:
            sbm.add(v)
        assert sbm.mean() == sum(values) / len(values)

    def test_collapsed_regime_ci_sane(self):
        """Collapsed CI approximates the exact batch-means interval."""
        rng = random.Random(7)
        values = [rng.gauss(100, 15) for _ in range(10_000)]
        sbm = StreamingBatchMeans(n_batches=10)
        for v in values:
            sbm.add(v)
        mean, hw = sbm.result()
        exact_mean, exact_hw = batch_means_ci(values, n_batches=10)
        assert mean == pytest.approx(exact_mean)
        assert hw is not None and hw > 0
        # Same order of magnitude as the exact interval (both are valid
        # batch-means CIs over differently-sized batches).
        assert 0.2 * exact_hw < hw < 5.0 * exact_hw

    def test_memory_stays_bounded(self):
        sbm = StreamingBatchMeans(n_batches=10)
        for i in range(100_000):
            sbm.add(float(i % 97))
        assert sbm._buffer is None
        assert len(sbm._batch_sums) < 2 * sbm.n_batches
        assert sbm.n == 100_000

    def test_empty_and_singleton(self):
        sbm = StreamingBatchMeans()
        assert sbm.result() is None
        assert sbm.mean() is None
        sbm.add(4.0)
        mean, hw = sbm.result()
        assert mean == 4.0
        assert hw is None

    def test_rejects_non_finite(self):
        sbm = StreamingBatchMeans()
        with pytest.raises(ValueError):
            sbm.add(math.nan)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingBatchMeans(n_batches=1)
        with pytest.raises(ValueError):
            StreamingBatchMeans(confidence=0.0)


def _random_run(rng, n_jobs, warmup_jobs, tau_us):
    """Synthesize a plausible completed-jobs trace with distinct times."""
    jobs = []
    t = 0.0
    for i in range(n_jobs):
        t += rng.uniform(10.0, 500.0)
        arrival = t
        admit = arrival + rng.uniform(0.0, 200.0)
        completion = admit + rng.uniform(50.0, 2000.0)
        jobs.append(
            JobRecord(
                index=i,
                name="CG",
                arrival_us=arrival,
                admit_us=admit,
                completion_us=completion,
                nominal_service_us=rng.uniform(40.0, 400.0),
                app_id=i + 1,
            )
        )
    return jobs


def _stats_for(jobs, streaming=None, record=True):
    horizon = max(j.completion_us for j in jobs)
    return DynamicStats(
        jobs=tuple(jobs) if record else (),
        queue_len_time_avg=0.5,
        max_queue_len=2,
        dropped=0,
        max_starvation_age_us=50.0,
        starvation_bound_us=1000.0,
        starvation_violations=0,
        utilization_time_avg=0.4,
        saturated_fraction=0.1,
        horizon_us=horizon,
        streaming=streaming,
    )


class TestStreamedVsExact:
    """Property test: the streamed summary matches the exact record-based
    one on randomized small runs (identical mean/throughput/CI; quantiles
    within the documented sketch tolerance)."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("warmup", [0, 3])
    def test_agreement(self, seed, warmup):
        rng = random.Random(seed)
        n_jobs = rng.randint(warmup + 4, 35)
        tau_us = rng.choice([0.0, 100.0])
        jobs = _random_run(rng, n_jobs, warmup, tau_us)

        stream = StreamingQueueingStats(warmup_jobs=warmup, tau_us=tau_us)
        for j in sorted(jobs, key=lambda j: (j.completion_us, j.index)):
            stream.observe(
                arrival_us=j.arrival_us,
                admit_us=j.admit_us,
                completion_us=j.completion_us,
                nominal_service_us=j.nominal_service_us,
            )
        snap = stream.snapshot(n_scheduled=n_jobs, n_dropped=0)

        exact = summarize_queueing(
            _stats_for(jobs), warmup_jobs=warmup, tau_us=tau_us
        )
        streamed = summarize_queueing(
            _stats_for(jobs, streaming=snap, record=False),
            warmup_jobs=warmup,
            tau_us=tau_us,
        )

        # Small runs stay in the buffered regime: bit-identical moments.
        assert streamed.mean_response_us == exact.mean_response_us
        assert streamed.response_ci_us == exact.response_ci_us
        assert streamed.mean_slowdown == exact.mean_slowdown
        assert streamed.slowdown_ci == exact.slowdown_ci
        assert streamed.mean_wait_us == pytest.approx(exact.mean_wait_us)
        assert streamed.throughput_jobs_per_s == exact.throughput_jobs_per_s
        assert streamed.n_completed == exact.n_completed
        assert streamed.n_dropped == exact.n_dropped

        # Quantiles: within the documented rank envelope of the exact ones,
        # widened by a few ranks for these tiny samples (the strict
        # P2_RANK_TOLERANCE bound is enforced at n=5000 in TestP2Quantile).
        kept = sorted(jobs, key=lambda j: (j.completion_us, j.index))[warmup:]
        responses = sorted(j.completion_us - j.arrival_us for j in kept)
        tol = P2_RANK_TOLERANCE + 3.0 / len(responses)
        for q, attr in [
            (0.5, "response_p50_us"),
            (0.95, "response_p95_us"),
            (0.99, "response_p99_us"),
        ]:
            estimate = getattr(streamed, attr)
            lo = exact_quantile(responses, max(0.0, q - tol))
            hi = exact_quantile(responses, min(1.0, q + tol))
            assert lo <= estimate <= hi

    def test_config_mismatch_rejected(self):
        jobs = _random_run(random.Random(0), 10, 0, 0.0)
        stream = StreamingQueueingStats(warmup_jobs=2)
        for j in jobs:
            stream.observe(j.arrival_us, j.admit_us, j.completion_us, 100.0)
        snap = stream.snapshot(n_scheduled=10, n_dropped=0)
        stats = _stats_for(jobs, streaming=snap, record=False)
        with pytest.raises(ValueError, match="warmup"):
            summarize_queueing(stats, warmup_jobs=0)

    def test_no_records_no_stream_raises(self):
        jobs = _random_run(random.Random(1), 5, 0, 0.0)
        stats = _stats_for(jobs, streaming=None, record=False)
        with pytest.raises(ValueError):
            summarize_queueing(stats)

    def test_all_warmup_raises(self):
        stream = StreamingQueueingStats(warmup_jobs=10)
        for i in range(5):
            stream.observe(0.0, 1.0, float(i + 2), 1.0)
        snap = stream.snapshot(n_scheduled=5, n_dropped=0)
        stats = _stats_for(
            _random_run(random.Random(2), 5, 0, 0.0), streaming=snap, record=False
        )
        with pytest.raises(ValueError, match="warmup"):
            summarize_queueing(stats, warmup_jobs=10)


class TestStreamingQueueingStats:
    def test_warmup_anchor_tracked(self):
        stream = StreamingQueueingStats(warmup_jobs=2)
        stream.observe(0.0, 0.0, 100.0, 50.0)
        stream.observe(0.0, 0.0, 250.0, 50.0)
        stream.observe(0.0, 0.0, 400.0, 50.0)
        snap = stream.snapshot(n_scheduled=3, n_dropped=0)
        assert snap.warmup_anchor_us == 250.0
        assert snap.n_observed == 3
        assert snap.n_kept == 1
        assert snap.first_kept_completion_us == 400.0

    def test_snapshot_is_dataclass_equal(self):
        def build():
            s = StreamingQueueingStats(warmup_jobs=1, tau_us=10.0)
            for i in range(20):
                s.observe(i * 10.0, i * 10.0 + 2.0, i * 10.0 + 50.0, 25.0)
            return s.snapshot(n_scheduled=20, n_dropped=1)

        assert build() == build()

    def test_quantile_lookup(self):
        stream = StreamingQueueingStats()
        for i in range(50):
            stream.observe(0.0, 0.0, float(i + 1), 1.0)
        snap = stream.snapshot(n_scheduled=50, n_dropped=0)
        assert snap.quantile(0.5) is not None
        assert snap.quantile(0.5, slowdown=True) is not None
        assert snap.quantile(0.123) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingQueueingStats(warmup_jobs=-1)
        with pytest.raises(ValueError):
            StreamingQueueingStats(tau_us=-1.0)
