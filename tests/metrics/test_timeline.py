"""Timeline sampler tests."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.hw.machine import Machine
from repro.metrics.timeline import TimelineSampler
from repro.sim.engine import Engine
from repro.workloads.patterns import ConstantPattern


def _setup():
    engine = Engine()
    machine = Machine(MachineConfig(), engine)
    t = machine.add_thread(
        "a", ConstantPattern(10.0).bind(np.random.default_rng(0)), 1e6, footprint_lines=0.0
    )
    machine.dispatch(0, t.tid)
    return engine, machine


class TestSampling:
    def test_points_at_period(self):
        engine, machine = _setup()
        tl = TimelineSampler(machine, engine, period_us=1_000.0)
        tl.start()
        engine.run_until(10_500.0, advancer=machine)
        times = [p.time_us for p in tl.points]
        assert times[0] == 0.0
        assert times[1] == 1_000.0
        assert len(times) == 11

    def test_utilisation_recorded(self):
        engine, machine = _setup()
        tl = TimelineSampler(machine, engine, period_us=1_000.0)
        tl.start()
        engine.run_until(5_000.0, advancer=machine)
        assert 0.0 < tl.mean_utilisation() < 1.0

    def test_transactions_monotone(self):
        engine, machine = _setup()
        tl = TimelineSampler(machine, engine, period_us=500.0)
        tl.start()
        engine.run_until(5_000.0, advancer=machine)
        txs = [p.total_transactions for p in tl.points]
        assert txs == sorted(txs)

    def test_rate_between(self):
        engine, machine = _setup()
        tl = TimelineSampler(machine, engine, period_us=500.0)
        tl.start()
        engine.run_until(10_000.0, advancer=machine)
        # steady rate = demand x speed ~ 10 x ~0.97 (plus warmup window)
        rate = tl.rate_between(2_000.0, 10_000.0)
        assert rate == pytest.approx(10.0, rel=0.1)

    def test_running_tids_snapshot(self):
        engine, machine = _setup()
        tl = TimelineSampler(machine, engine, period_us=1_000.0)
        tl.start()
        assert tl.points[0].running_tids == (1,)

    def test_invalid_period(self):
        engine, machine = _setup()
        with pytest.raises(ValueError):
            TimelineSampler(machine, engine, period_us=0.0)

    def test_empty_queries_raise(self):
        engine, machine = _setup()
        tl = TimelineSampler(machine, engine)
        with pytest.raises(ValueError):
            tl.mean_utilisation()
        tl.start()
        with pytest.raises(ValueError):
            tl.rate_between(5.0, 1.0)

    def test_double_start_noop(self):
        engine, machine = _setup()
        tl = TimelineSampler(machine, engine, period_us=1_000.0)
        tl.start()
        tl.start()
        assert len(tl.points) == 1
