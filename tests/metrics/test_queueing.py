"""Queueing-metrics tests: CIs, bounded slowdown, warmup truncation."""

import math

import pytest

from repro.metrics.queueing import (
    DynamicStats,
    JobRecord,
    batch_means_ci,
    bounded_slowdown,
    summarize_queueing,
)


def _job(index, arrival, admit, completion, service=100.0, name="CG"):
    return JobRecord(
        index=index,
        name=name,
        arrival_us=arrival,
        admit_us=admit,
        completion_us=completion,
        nominal_service_us=service,
        app_id=None if admit is None else index + 1,
    )


def _stats(jobs, dropped=0, violations=0):
    horizon = max((j.completion_us for j in jobs if j.completion_us), default=1.0)
    return DynamicStats(
        jobs=tuple(jobs),
        queue_len_time_avg=0.5,
        max_queue_len=2,
        dropped=dropped,
        max_starvation_age_us=50.0,
        starvation_bound_us=1000.0,
        starvation_violations=violations,
        utilization_time_avg=0.4,
        saturated_fraction=0.1,
        horizon_us=horizon,
    )


class TestBatchMeansCI:
    def test_constant_series_zero_width(self):
        mean, hw = batch_means_ci([5.0] * 40, n_batches=8)
        assert mean == 5.0
        assert hw == pytest.approx(0.0)

    def test_mean_is_plain_average(self):
        values = [float(i) for i in range(1, 21)]
        mean, hw = batch_means_ci(values, n_batches=5)
        assert mean == pytest.approx(10.5)
        assert hw > 0

    def test_wider_spread_wider_ci(self):
        tight = [10.0 + (i % 2) for i in range(40)]
        loose = [10.0 + 10 * (i % 2) for i in range(40)]
        _, hw_tight = batch_means_ci(tight, n_batches=8)
        _, hw_loose = batch_means_ci(loose, n_batches=8)
        assert hw_loose > hw_tight

    def test_too_few_observations_none_width(self):
        # None, not NaN: a NaN half-width silently propagates through
        # arithmetic and serialises as the string "nan" in CSV exports.
        mean, hw = batch_means_ci([1.0, 2.0, 3.0], n_batches=10)
        assert mean == pytest.approx(2.0)
        assert hw is None

    def test_zero_variance_zero_width_not_none(self):
        # Identical batch means are a legitimate zero-width interval.
        mean, hw = batch_means_ci([3.0] * 8, n_batches=4)
        assert mean == 3.0
        assert hw == 0.0

    def test_non_finite_observations_rejected(self):
        with pytest.raises(ValueError):
            batch_means_ci([1.0, math.nan, 3.0, 4.0])
        with pytest.raises(ValueError):
            batch_means_ci([1.0, math.inf, 3.0, 4.0])

    def test_uneven_batches_handled(self):
        mean, hw = batch_means_ci([float(i) for i in range(23)], n_batches=5)
        assert mean == pytest.approx(11.0)
        assert math.isfinite(hw)

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means_ci([], n_batches=4)
        with pytest.raises(ValueError):
            batch_means_ci([1.0], n_batches=1)
        with pytest.raises(ValueError):
            batch_means_ci([1.0], confidence=1.5)


class TestBoundedSlowdown:
    def test_plain_ratio(self):
        assert bounded_slowdown(300.0, 100.0) == 3.0

    def test_floored_at_one(self):
        assert bounded_slowdown(50.0, 100.0) == 1.0

    def test_tau_caps_short_jobs(self):
        assert bounded_slowdown(300.0, 1.0, tau_us=100.0) == 3.0

    def test_zero_service_with_tau_uses_bound(self):
        # A degenerate no-work job is well-defined when tau bounds it.
        assert bounded_slowdown(300.0, 0.0, tau_us=100.0) == 3.0

    def test_zero_service_zero_tau_limits(self):
        # The mathematical limit, never a ZeroDivisionError or NaN.
        assert bounded_slowdown(0.0, 0.0) == 1.0
        assert bounded_slowdown(10.0, 0.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            bounded_slowdown(10.0, -1.0)
        with pytest.raises(ValueError):
            bounded_slowdown(-1.0, 10.0)


class TestSummarize:
    def test_basic_metrics(self):
        jobs = [
            _job(i, arrival=i * 100.0, admit=i * 100.0 + 10, completion=i * 100.0 + 210)
            for i in range(10)
        ]
        s = summarize_queueing(_stats(jobs))
        assert s.n_jobs == 10
        assert s.n_completed == 10
        assert s.mean_response_us == pytest.approx(210.0)
        assert s.mean_wait_us == pytest.approx(10.0)
        assert s.mean_slowdown == pytest.approx(2.1)
        assert s.starvation_ok
        # 9 completion gaps of 100 us each.
        assert s.throughput_jobs_per_s == pytest.approx(9 / 900 * 1e6)

    def test_warmup_truncation(self):
        jobs = [
            # Transient: the first completion, with an inflated response.
            _job(0, arrival=0.0, admit=0.0, completion=250.0),
        ] + [
            _job(i, arrival=i * 100.0, admit=i * 100.0, completion=i * 100.0 + 200.0)
            for i in range(1, 9)
        ]
        full = summarize_queueing(_stats(jobs), warmup_jobs=0)
        trimmed = summarize_queueing(_stats(jobs), warmup_jobs=1)
        assert trimmed.mean_response_us == pytest.approx(200.0)
        assert full.mean_response_us > trimmed.mean_response_us

    def test_dropped_jobs_counted_not_averaged(self):
        jobs = [
            _job(0, arrival=0.0, admit=5.0, completion=105.0),
            _job(1, arrival=10.0, admit=None, completion=None),
        ]
        s = summarize_queueing(_stats(jobs, dropped=1))
        assert s.n_dropped == 1
        assert s.drop_fraction == pytest.approx(0.5)
        assert s.mean_response_us == pytest.approx(105.0)

    def test_everything_truncated_raises(self):
        jobs = [_job(0, arrival=0.0, admit=0.0, completion=100.0)]
        with pytest.raises(ValueError):
            summarize_queueing(_stats(jobs), warmup_jobs=1)

    def test_violations_flip_verdict(self):
        jobs = [_job(0, arrival=0.0, admit=0.0, completion=100.0)]
        s = summarize_queueing(_stats(jobs, violations=2))
        assert not s.starvation_ok

    def test_exact_quantiles_populated(self):
        jobs = [
            _job(i, arrival=0.0, admit=0.0, completion=float(i + 1) * 100.0)
            for i in range(10)
        ]
        s = summarize_queueing(_stats(jobs))
        responses = sorted((i + 1) * 100.0 for i in range(10))
        assert s.response_p50_us == pytest.approx(550.0)
        assert s.response_p95_us == pytest.approx(
            responses[-2] + 0.55 * (responses[-1] - responses[-2])
        )
        assert s.response_p99_us <= responses[-1]
        assert s.slowdown_p50 >= 1.0


class TestSimultaneousCompletionThroughput:
    """Regression: >=2 post-warmup completions sharing a timestamp used to
    fall through to the whole-horizon rate, understating throughput by the
    idle tail of the run."""

    def test_shared_timestamp_uses_window_not_horizon(self):
        import dataclasses

        jobs = [_job(i, arrival=0.0, admit=0.0, completion=100.0) for i in range(3)]
        stats = dataclasses.replace(_stats(jobs), horizon_us=1000.0)
        s = summarize_queueing(stats)
        # 3 completions by t=100us, not 3 over the 1000us horizon.
        assert s.throughput_jobs_per_s == pytest.approx(3 / 100.0 * 1e6)

    def test_shared_timestamp_with_warmup_anchor(self):
        import dataclasses

        jobs = [
            _job(0, arrival=0.0, admit=0.0, completion=50.0),
            _job(1, arrival=0.0, admit=0.0, completion=80.0),
        ] + [_job(i, arrival=0.0, admit=0.0, completion=100.0) for i in range(2, 5)]
        stats = dataclasses.replace(_stats(jobs), horizon_us=1000.0)
        s = summarize_queueing(stats, warmup_jobs=2)
        # Window opens at the last warmup completion (t=80us).
        assert s.throughput_jobs_per_s == pytest.approx(3 / (100.0 - 80.0) * 1e6)

    def test_distinct_timestamps_unchanged(self):
        jobs = [
            _job(i, arrival=i * 100.0, admit=i * 100.0 + 10, completion=i * 100.0 + 210)
            for i in range(10)
        ]
        s = summarize_queueing(_stats(jobs))
        assert s.throughput_jobs_per_s == pytest.approx(9 / 900 * 1e6)
