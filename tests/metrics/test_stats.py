"""Statistics helpers tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import (
    geometric_mean,
    improvement_percent,
    slowdown,
    summarize_improvements,
)


class TestSlowdown:
    def test_basic(self):
        assert slowdown(300.0, 100.0) == 3.0

    def test_no_slowdown(self):
        assert slowdown(100.0, 100.0) == 1.0

    def test_invalid_solo(self):
        with pytest.raises(ValueError):
            slowdown(1.0, 0.0)

    def test_negative_turnaround(self):
        with pytest.raises(ValueError):
            slowdown(-1.0, 1.0)


class TestImprovement:
    def test_faster_positive(self):
        assert improvement_percent(200.0, 100.0) == 50.0

    def test_slower_negative(self):
        assert improvement_percent(100.0, 120.0) == pytest.approx(-20.0)

    def test_no_change(self):
        assert improvement_percent(100.0, 100.0) == 0.0

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 1.0)

    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e6),
    )
    @settings(max_examples=200, deadline=None)
    def test_bounded_above_by_100(self, base, pol):
        assert improvement_percent(base, pol) <= 100.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestSummary:
    def test_fields(self):
        s = summarize_improvements([10.0, 50.0, -5.0])
        assert s.mean_percent == pytest.approx(55.0 / 3.0)
        assert s.max_percent == 50.0
        assert s.min_percent == -5.0
        assert s.n_improved == 2
        assert s.n_regressed == 1

    def test_str_renders(self):
        s = summarize_improvements([10.0])
        assert "avg" in str(s) and "+10.0%" in str(s)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_improvements([])
