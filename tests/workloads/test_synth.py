"""Randomized workload generator checks."""

import numpy as np

from repro.workloads.synth import random_spec, random_workload


class TestRandomSpec:
    def test_deterministic_per_seed(self):
        a = random_spec(np.random.default_rng(4))
        b = random_spec(np.random.default_rng(4))
        assert a == b

    def test_valid_across_seeds(self):
        for seed in range(30):
            spec = random_spec(np.random.default_rng(seed))
            assert spec.n_threads >= 1
            assert spec.work_per_thread_us > 0
            assert spec.pattern.mean_rate() >= 0

    def test_respects_max_threads(self):
        for seed in range(20):
            spec = random_spec(np.random.default_rng(seed), max_threads=2)
            assert spec.n_threads <= 2


class TestRandomWorkload:
    def test_count_and_width(self):
        apps = random_workload(np.random.default_rng(0), n_apps=5, n_cpus=4)
        assert len(apps) == 5
        assert all(a.n_threads <= 4 for a in apps)

    def test_unique_names(self):
        apps = random_workload(np.random.default_rng(0), n_apps=3)
        assert len({a.name for a in apps}) == 3
