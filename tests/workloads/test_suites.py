"""The paper application catalogue: structural and calibration checks."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.suites import PAPER_APPS, PAPER_SOLO_RATES, paper_app, paper_app_names


class TestCatalogue:
    def test_eleven_applications(self):
        assert len(PAPER_APPS) == 11

    def test_figure_order_is_increasing_rate(self):
        rates = [PAPER_SOLO_RATES[name] for name in paper_app_names()]
        assert rates == sorted(rates)

    def test_extremes_match_paper_text(self):
        # "The bandwidth consumption varies from 0.48 to 23.31 bus
        # transactions per microsecond."
        assert PAPER_SOLO_RATES["Radiosity"] == 0.48
        assert PAPER_SOLO_RATES["CG"] == 23.31

    def test_pattern_means_match_catalogue_rates(self):
        for name, spec in PAPER_APPS.items():
            assert spec.solo_rate_txus == pytest.approx(PAPER_SOLO_RATES[name], rel=0.01), name

    def test_all_two_threaded(self):
        # the paper runs every application with two threads
        assert all(spec.n_threads == 2 for spec in PAPER_APPS.values())

    def test_high_demand_apps_do_not_self_saturate(self):
        # Peak two-thread demand must stay below bus capacity so solo runs
        # reproduce Figure 1A (the paper's Raytrace anomaly excepted — see
        # EXPERIMENTS.md).
        from repro.workloads.patterns import MarkovBurstPattern, PhasedPattern

        for name, spec in PAPER_APPS.items():
            pattern = spec.pattern
            if isinstance(pattern, PhasedPattern):
                peak = max(rate for _, rate in pattern.phases)
            elif isinstance(pattern, MarkovBurstPattern):
                peak = pattern.high_rate_txus
            else:
                continue
            assert peak * spec.n_threads <= 31.5, name

    def test_migration_sensitive_apps(self):
        # the paper singles out LU CB (99.53% hit rate) and Water-nsqr
        assert PAPER_APPS["LU CB"].migration_sensitivity > 0
        assert PAPER_APPS["Water-nsqr"].migration_sensitivity > 0
        assert PAPER_APPS["CG"].migration_sensitivity == 0

    def test_lookup(self):
        assert paper_app("CG").name == "CG"
        with pytest.raises(WorkloadError):
            paper_app("DOOM")


class TestSoloCalibration:
    """End-to-end: solo runs measure the Figure 1A rates (±10 %)."""

    @pytest.mark.parametrize("name", ["Radiosity", "LU CB", "SP", "CG"])
    def test_solo_rate(self, name):
        from repro.experiments.base import solo_run

        result = solo_run(PAPER_APPS[name].scaled(0.1))
        assert result.workload_rate_txus == pytest.approx(
            PAPER_SOLO_RATES[name], rel=0.12
        )
