"""Microbenchmark and STREAM model checks."""

import pytest

from repro.experiments.base import SimulationSpec, run_simulation
from repro.units import XEON_L2_LINES
from repro.workloads.microbench import (
    BBMA_RATE_TXUS,
    NBBMA_RATE_TXUS,
    bbma_spec,
    nbbma_spec,
)
from repro.workloads.stream import stream_spec


class TestSpecs:
    def test_bbma_matches_paper(self):
        spec = bbma_spec()
        assert spec.n_threads == 1
        assert spec.pattern.mean_rate() == BBMA_RATE_TXUS == 23.6
        # array twice the L2 size: never cache-resident
        assert spec.footprint_lines == 2 * XEON_L2_LINES

    def test_nbbma_matches_paper(self):
        spec = nbbma_spec()
        assert spec.pattern.mean_rate() == NBBMA_RATE_TXUS == 0.0037
        # array half the L2 size: fully cache-resident
        assert spec.footprint_lines == XEON_L2_LINES // 2

    def test_background_work_is_effectively_unbounded(self):
        assert bbma_spec().work_per_thread_us >= 1e11

    def test_stream_spec_thread_count(self):
        assert stream_spec(n_threads=4).n_threads == 4


class TestMeasuredRates:
    def test_bbma_solo_rate(self):
        result = run_simulation(
            SimulationSpec(targets=[bbma_spec(work_us=100_000.0)], scheduler="dedicated", trace=False)
        )
        assert result.workload_rate_txus == pytest.approx(23.6, rel=0.05)

    def test_nbbma_solo_rate(self):
        result = run_simulation(
            SimulationSpec(targets=[nbbma_spec(work_us=100_000.0)], scheduler="dedicated", trace=False)
        )
        # nBBMA's compulsory-miss warmup adds a little traffic on top of the
        # steady 0.0037 tx/us, which is itself negligible.
        assert result.workload_rate_txus < 0.05

    def test_stream_saturates_bus(self):
        result = run_simulation(
            SimulationSpec(
                targets=[stream_spec(n_threads=4, work_us=100_000.0)],
                scheduler="dedicated",
                trace=False,
            )
        )
        # sustained throughput == the machine's capacity (29.5 tx/us)
        assert result.workload_rate_txus == pytest.approx(29.5, rel=0.02)
