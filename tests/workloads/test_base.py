"""Unit tests for ApplicationSpec / Application."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.errors import WorkloadError
from repro.hw.machine import Machine
from repro.sim.engine import Engine
from repro.workloads.base import Application, ApplicationSpec
from repro.workloads.patterns import ConstantPattern


def _spec(**kw):
    defaults = dict(
        name="app",
        n_threads=2,
        work_per_thread_us=1000.0,
        pattern=ConstantPattern(2.0),
    )
    defaults.update(kw)
    return ApplicationSpec(**defaults)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"n_threads": 0},
            {"work_per_thread_us": 0.0},
            {"footprint_lines": -1.0},
            {"migration_sensitivity": -1.0},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(WorkloadError):
            _spec(**kw)

    def test_solo_rate_sums_threads(self):
        assert _spec(n_threads=3).solo_rate_txus == pytest.approx(6.0)
        assert _spec().per_thread_rate_txus == pytest.approx(2.0)

    def test_scaled(self):
        assert _spec().scaled(0.5).work_per_thread_us == 500.0
        with pytest.raises(WorkloadError):
            _spec().scaled(0.0)

    def test_scaled_preserves_other_fields(self):
        s = _spec(migration_sensitivity=2.0).scaled(2.0)
        assert s.migration_sensitivity == 2.0
        assert s.pattern.mean_rate() == 2.0


class TestApplicationLaunch:
    def test_launch_registers_threads(self):
        machine = Machine(MachineConfig(), Engine())
        app = Application.launch(_spec(), machine, np.random.default_rng(0))
        assert len(app.threads) == 2
        assert all(machine.counters.known(t) for t in app.tids)
        assert all(t.app_id == app.app_id for t in app.threads)

    def test_instance_ids_unique(self):
        machine = Machine(MachineConfig(), Engine())
        a = Application.launch(_spec(), machine, np.random.default_rng(0))
        b = Application.launch(_spec(), machine, np.random.default_rng(1))
        assert a.app_id != b.app_id

    def test_turnaround_none_until_finished(self):
        machine = Machine(MachineConfig(), Engine())
        app = Application.launch(_spec(), machine, np.random.default_rng(0))
        assert not app.finished
        assert app.turnaround_us is None

    def test_turnaround_is_last_thread_completion(self):
        engine = Engine()
        machine = Machine(MachineConfig(), engine)
        app = Application.launch(_spec(footprint_lines=0.0), machine, np.random.default_rng(0))
        machine.dispatch(0, app.tids[0])
        machine.dispatch(1, app.tids[1])
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e8)
        assert app.finished
        assert app.turnaround_us == max(t.finished_at for t in app.threads)

    def test_blocked_reflects_threads(self):
        machine = Machine(MachineConfig(), Engine())
        app = Application.launch(_spec(), machine, np.random.default_rng(0))
        assert not app.blocked()
        machine.set_blocked(app.tids[0], True)
        assert app.blocked()

    def test_name_property(self):
        machine = Machine(MachineConfig(), Engine())
        app = Application.launch(_spec(name="CG"), machine, np.random.default_rng(0))
        assert app.name == "CG"
        assert app.n_threads == 2
