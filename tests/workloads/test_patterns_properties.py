"""Property-based tests for demand patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.patterns import MarkovBurstPattern, PhasedPattern
from repro.workloads.synth import random_pattern

_work = st.floats(min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1e5),
            st.floats(min_value=0.0, max_value=30.0),
        ),
        min_size=1,
        max_size=6,
    ),
    _work,
)
@settings(max_examples=200, deadline=None)
def test_phased_segment_contains_query(phases, work):
    proc = PhasedPattern(tuple(phases)).bind(np.random.default_rng(0))
    rate, end = proc.segment(work)
    assert end > work
    assert rate >= 0.0
    # the rate must belong to the phase set
    assert any(abs(rate - r) < 1e-12 for _, r in phases)


@given(st.integers(min_value=0, max_value=1000), st.lists(_work, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_markov_segments_cover_work_line(seed, queries):
    pat = MarkovBurstPattern(1.0, 10.0, 500.0, 300.0)
    proc = pat.bind(np.random.default_rng(seed))
    for w in sorted(queries):
        rate, end = proc.segment(w)
        assert end > w
        assert rate in (1.0, 10.0)


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=50, deadline=None)
def test_random_patterns_are_valid(seed):
    rng = np.random.default_rng(seed)
    pat = random_pattern(rng)
    proc = pat.bind(np.random.default_rng(seed + 1))
    mean = pat.mean_rate()
    assert mean >= 0.0
    work = 0.0
    for _ in range(50):
        rate, end = proc.segment(work)
        assert rate >= -1e-12
        assert end > work
        work = min(end, work + 10_000.0)


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=40, deadline=None)
def test_markov_mean_rate_matches_long_run(seed):
    pat = MarkovBurstPattern(2.0, 12.0, 2000.0, 1000.0)
    proc = pat.bind(np.random.default_rng(seed))
    horizon = 5e6
    total = 0.0
    work = 0.0
    while work < horizon:
        rate, end = proc.segment(work)
        end = min(end, horizon)
        total += rate * (end - work)
        work = end
    assert total / horizon == pytest.approx(pat.mean_rate(), rel=0.15)
