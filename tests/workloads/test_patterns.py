"""Unit tests for demand patterns."""

import math

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.patterns import (
    ConstantPattern,
    JitterPattern,
    MarkovBurstPattern,
    PhasedPattern,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestConstant:
    def test_segment_infinite(self):
        proc = ConstantPattern(3.0).bind(_rng())
        assert proc.segment(0.0) == (3.0, math.inf)
        assert proc.segment(1e9) == (3.0, math.inf)

    def test_mean_rate(self):
        assert ConstantPattern(3.0).mean_rate() == 3.0

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            ConstantPattern(-1.0)


class TestPhased:
    def test_cycle_lookup(self):
        p = PhasedPattern(((100.0, 1.0), (50.0, 10.0))).bind(_rng())
        assert p.segment(0.0) == (1.0, 100.0)
        assert p.segment(99.9) == (1.0, 100.0)
        assert p.segment(100.0) == (10.0, 150.0)
        assert p.segment(149.0) == (10.0, 150.0)

    def test_repeats_across_cycles(self):
        p = PhasedPattern(((100.0, 1.0), (50.0, 10.0))).bind(_rng())
        rate, end = p.segment(150.0)  # start of cycle 2
        assert rate == 1.0
        assert end == 250.0

    def test_boundary_exact(self):
        p = PhasedPattern(((100.0, 1.0), (50.0, 10.0))).bind(_rng())
        rate, end = p.segment(150.0 * 7)  # exactly on a cycle boundary
        assert rate == 1.0

    def test_mean_rate_weighted(self):
        pat = PhasedPattern(((100.0, 1.0), (50.0, 10.0)))
        assert pat.mean_rate() == pytest.approx(4.0)

    def test_cycle_work(self):
        assert PhasedPattern(((100.0, 1.0), (50.0, 10.0))).cycle_work == 150.0

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            PhasedPattern(())

    def test_zero_length_phase_rejected(self):
        with pytest.raises(WorkloadError):
            PhasedPattern(((0.0, 1.0),))

    def test_negative_work_query_rejected(self):
        p = PhasedPattern(((10.0, 1.0),)).bind(_rng())
        with pytest.raises(WorkloadError):
            p.segment(-1.0)


class TestMarkovBurst:
    def _pattern(self, **kw):
        defaults = dict(
            low_rate_txus=2.0,
            high_rate_txus=15.0,
            mean_low_work_us=1000.0,
            mean_high_work_us=500.0,
        )
        defaults.update(kw)
        return MarkovBurstPattern(**defaults)

    def test_rates_alternate(self):
        proc = self._pattern().bind(_rng(1))
        rates = []
        work = 0.0
        for _ in range(20):
            rate, end = proc.segment(work)
            rates.append(rate)
            work = end
        # strictly alternating between the two states
        for a, b in zip(rates, rates[1:]):
            assert a != b
        assert set(rates) == {2.0, 15.0}

    def test_deterministic_per_seed(self):
        a = self._pattern().bind(_rng(7))
        b = self._pattern().bind(_rng(7))
        for w in (0.0, 100.0, 5000.0, 20_000.0):
            assert a.segment(w) == b.segment(w)

    def test_non_monotone_queries_supported(self):
        proc = self._pattern().bind(_rng(3))
        first = proc.segment(10_000.0)
        early = proc.segment(0.0)
        assert proc.segment(10_000.0) == first
        assert proc.segment(0.0) == early

    def test_mean_rate(self):
        pat = self._pattern()
        expected = (2.0 * 1000 + 15.0 * 500) / 1500
        assert pat.mean_rate() == pytest.approx(expected)

    def test_long_run_average_approaches_mean(self):
        pat = self._pattern()
        proc = pat.bind(_rng(11))
        total_tx = 0.0
        work = 0.0
        while work < 3e6:
            rate, end = proc.segment(work)
            end = min(end, 3e6)
            total_tx += rate * (end - work)
            work = end
        assert total_tx / 3e6 == pytest.approx(pat.mean_rate(), rel=0.1)

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            self._pattern(low_rate_txus=-1.0)
        with pytest.raises(WorkloadError):
            self._pattern(mean_low_work_us=0.0)
        with pytest.raises(WorkloadError):
            self._pattern(high_rate_txus=1.0)  # below low rate


class TestJitter:
    def test_rate_within_band(self):
        proc = JitterPattern(10.0, jitter=0.2, chunk_work_us=100.0).bind(_rng(5))
        for w in np.linspace(0, 10_000, 50):
            rate, _ = proc.segment(float(w))
            assert 8.0 <= rate <= 12.0

    def test_chunk_boundaries(self):
        proc = JitterPattern(10.0, jitter=0.2, chunk_work_us=100.0).bind(_rng(5))
        rate, end = proc.segment(0.0)
        assert end == 100.0
        rate2, end2 = proc.segment(100.0)
        assert end2 == 200.0

    def test_deterministic(self):
        a = JitterPattern(10.0, 0.3, 50.0).bind(_rng(9))
        b = JitterPattern(10.0, 0.3, 50.0).bind(_rng(9))
        assert [a.segment(w) for w in (0.0, 60.0, 500.0)] == [
            b.segment(w) for w in (0.0, 60.0, 500.0)
        ]

    def test_mean_rate(self):
        assert JitterPattern(10.0).mean_rate() == 10.0

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            JitterPattern(-1.0)
        with pytest.raises(WorkloadError):
            JitterPattern(1.0, jitter=1.0)
        with pytest.raises(WorkloadError):
            JitterPattern(1.0, chunk_work_us=0.0)


class TestTrace:
    def test_segments_replayed(self):
        from repro.workloads.patterns import TracePattern

        proc = TracePattern(((100.0, 2.0), (50.0, 8.0))).bind(_rng())
        assert proc.segment(0.0) == (2.0, 100.0)
        assert proc.segment(50.0) == (2.0, 100.0)
        assert proc.segment(100.0) == (8.0, 150.0)

    def test_tail_holds_after_trace(self):
        from repro.workloads.patterns import TracePattern
        import math as _math

        proc = TracePattern(((10.0, 5.0),), tail_rate_txus=1.0).bind(_rng())
        rate, end = proc.segment(10.0)
        assert rate == 1.0
        assert end == _math.inf

    def test_default_tail_is_last_rate(self):
        from repro.workloads.patterns import TracePattern

        proc = TracePattern(((10.0, 5.0), (10.0, 9.0))).bind(_rng())
        assert proc.segment(100.0)[0] == 9.0

    def test_mean_rate(self):
        from repro.workloads.patterns import TracePattern

        assert TracePattern(((100.0, 2.0), (100.0, 6.0))).mean_rate() == pytest.approx(4.0)

    def test_from_counter_samples(self):
        from repro.workloads.patterns import TracePattern

        t = TracePattern.from_counter_samples([(0.0, 0.0), (100.0, 300.0), (150.0, 400.0)])
        assert t.segments == ((100.0, 3.0), (50.0, 2.0))

    def test_invalid_samples(self):
        from repro.workloads.patterns import TracePattern

        with pytest.raises(WorkloadError):
            TracePattern.from_counter_samples([(0.0, 0.0)])
        with pytest.raises(WorkloadError):
            TracePattern.from_counter_samples([(0.0, 0.0), (0.0, 1.0)])
        with pytest.raises(WorkloadError):
            TracePattern.from_counter_samples([(0.0, 5.0), (10.0, 1.0)])

    def test_invalid_segments(self):
        from repro.workloads.patterns import TracePattern

        with pytest.raises(WorkloadError):
            TracePattern(())
        with pytest.raises(WorkloadError):
            TracePattern(((0.0, 1.0),))
        with pytest.raises(WorkloadError):
            TracePattern(((1.0, -1.0),))

    def test_runs_on_machine(self):
        from repro.workloads.patterns import TracePattern
        from repro.experiments.base import SimulationSpec, run_simulation
        from repro.workloads.base import ApplicationSpec

        spec = ApplicationSpec(
            name="traced",
            n_threads=1,
            work_per_thread_us=300.0,
            pattern=TracePattern(((100.0, 1.0), (100.0, 20.0))),
            footprint_lines=0.0,
        )
        result = run_simulation(
            SimulationSpec(targets=[spec], scheduler="dedicated", trace=False)
        )
        assert result.mean_target_turnaround_us() > 0
