"""FairQueue: per-tenant round-robin fairness, bounded rejection
accounting, and drain semantics."""

import threading

import pytest

from repro.experiments.base import SimulationSpec
from repro.service.jobs import FairQueue, Job, QueueFullError
from repro.workloads.suites import paper_app


def _job(tenant: str, n: int) -> Job:
    spec = SimulationSpec(
        targets=[paper_app("CG").scaled(0.02)], scheduler="linux", seed=n
    )
    return Job(run_id=f"{tenant}-{n}", tenant=tenant, spec=spec, spec_hash=f"h{n}")


class TestFairness:
    def test_round_robin_across_tenants(self):
        queue = FairQueue(capacity=16)
        # alice floods five jobs before bob's single job arrives.
        for i in range(5):
            queue.offer(_job("alice", i))
        queue.offer(_job("bob", 0))
        order = [job.run_id for job in queue.take_batch(6, timeout=0)]
        # bob is served second, not sixth: one alice job, then bob's.
        assert order[:2] == ["alice-0", "bob-0"]
        assert order[2:] == ["alice-1", "alice-2", "alice-3", "alice-4"]

    def test_three_tenants_interleave(self):
        queue = FairQueue(capacity=16)
        for tenant in ("a", "b", "c"):
            for i in range(2):
                queue.offer(_job(tenant, i))
        order = [job.tenant for job in queue.take_batch(6, timeout=0)]
        assert order == ["a", "b", "c", "a", "b", "c"]

    def test_single_tenant_is_fifo(self):
        queue = FairQueue(capacity=8)
        for i in range(3):
            queue.offer(_job("solo", i))
        order = [job.run_id for job in queue.take_batch(8, timeout=0)]
        assert order == ["solo-0", "solo-1", "solo-2"]

    def test_by_tenant_snapshot(self):
        queue = FairQueue(capacity=8)
        queue.offer(_job("a", 0))
        queue.offer(_job("a", 1))
        queue.offer(_job("b", 0))
        assert queue.by_tenant() == {"a": 2, "b": 1}
        queue.take_batch(3, timeout=0)
        assert queue.by_tenant() == {}


class TestBoundedDepth:
    def test_rejects_beyond_capacity_with_accounting(self):
        queue = FairQueue(capacity=2)
        queue.offer(_job("t", 0))
        queue.offer(_job("t", 1))
        with pytest.raises(QueueFullError):
            queue.offer(_job("t", 2))
        assert queue.depth == 2
        assert (queue.offered, queue.accepted, queue.rejected_full) == (3, 2, 1)

    def test_capacity_frees_after_take(self):
        queue = FairQueue(capacity=1)
        queue.offer(_job("t", 0))
        queue.take_batch(1, timeout=0)
        queue.offer(_job("t", 1))  # must not raise
        assert queue.depth == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FairQueue(capacity=0)


class TestBlockingAndDrain:
    def test_take_batch_timeout_returns_empty(self):
        queue = FairQueue(capacity=4)
        assert queue.take_batch(4, timeout=0.01) == []

    def test_take_batch_wakes_on_offer(self):
        queue = FairQueue(capacity=4)
        got: list[str] = []

        def taker():
            batch = queue.take_batch(1, timeout=5.0)
            got.extend(job.run_id for job in batch)

        thread = threading.Thread(target=taker)
        thread.start()
        queue.offer(_job("t", 0))
        thread.join(timeout=5.0)
        assert got == ["t-0"]

    def test_drain_all_empties_queue(self):
        queue = FairQueue(capacity=8)
        for i in range(3):
            queue.offer(_job("t", i))
        drained = queue.drain_all()
        assert [job.run_id for job in drained] == ["t-0", "t-1", "t-2"]
        assert queue.depth == 0
        assert queue.take_batch(1, timeout=0) == []

    def test_wake_unblocks_waiter(self):
        queue = FairQueue(capacity=4)
        results: list[list] = []

        def taker():
            results.append(queue.take_batch(1, timeout=5.0))

        thread = threading.Thread(target=taker)
        thread.start()
        # wake() with nothing queued: the waiter returns empty promptly.
        queue.wake()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
