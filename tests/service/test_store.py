"""ResultStore: lifecycle transitions, exact result round-trip, cache
lookup by spec hash, and persistence across reopen."""

import os

import pytest

from repro.experiments.base import run_simulation
from repro.service.schemas import spec_from_dict, spec_to_dict
from repro.service.store import ResultStore, RunRecord, UnknownRunError
from repro.config import canonical_hash, canonical_json

SPEC_PAYLOAD = {
    "targets": [{"app": "CG", "work_scale": 0.02}],
    "background": [{"microbench": "BBMA"}],
    "scheduler": "linux",
    "max_time_us": 200_000,
}


@pytest.fixture
def store():
    s = ResultStore(":memory:")
    yield s
    s.close()


def _spec():
    return spec_from_dict(SPEC_PAYLOAD)


def _create(store, tenant="t1", label=None) -> RunRecord:
    spec = _spec()
    return store.create(
        spec_hash=spec.spec_hash(),
        spec_json=canonical_json(spec_to_dict(spec)),
        tenant=tenant,
        label=label,
    )


class TestLifecycle:
    def test_create_is_queued(self, store):
        record = _create(store, label="first")
        assert record.status == "queued" and not record.terminal
        assert record.tenant == "t1" and record.label == "first"
        assert store.get(record.run_id) == record

    def test_done_round_trips_result_exactly(self, store):
        record = _create(store)
        store.mark_running(record.run_id)
        assert store.get(record.run_id).status == "running"
        result = run_simulation(_spec())
        store.mark_done(record.run_id, result, wall_time_s=1.25)
        final = store.get(record.run_id)
        assert final.status == "done" and final.terminal
        assert final.wall_time_s == 1.25
        assert store.get_result(record.run_id) == result

    def test_result_none_until_done(self, store):
        record = _create(store)
        assert store.get_result(record.run_id) is None

    def test_failed_records_error(self, store):
        record = _create(store)
        store.mark_running(record.run_id)
        store.mark_failed(record.run_id, "SimulationError: boom")
        final = store.get(record.run_id)
        assert final.status == "failed" and "boom" in final.error
        assert store.get_result(record.run_id) is None

    def test_cancelled(self, store):
        record = _create(store)
        store.mark_cancelled(record.run_id)
        assert store.get(record.run_id).status == "cancelled"

    def test_unknown_run_raises(self, store):
        with pytest.raises(UnknownRunError):
            store.get("nope")
        with pytest.raises(UnknownRunError):
            store.mark_running("nope")

    def test_spec_json_preserved(self, store):
        record = _create(store)
        text = store.get_spec_json(record.run_id)
        assert canonical_hash(spec_to_dict(spec_from_dict(
            __import__("json").loads(text)))) != ""  # decodes cleanly


class TestCacheLookup:
    def test_lookup_misses_before_any_done(self, store):
        record = _create(store)
        assert store.lookup_cached(record.spec_hash) is None
        store.mark_running(record.run_id)
        assert store.lookup_cached(record.spec_hash) is None

    def test_lookup_hits_after_done(self, store):
        record = _create(store)
        store.mark_running(record.run_id)
        result = run_simulation(_spec())
        store.mark_done(record.run_id, result, wall_time_s=0.5)
        hit = store.lookup_cached(record.spec_hash)
        assert hit is not None and hit.run_id == record.run_id

    def test_mark_cached_copies_result(self, store):
        first = _create(store)
        store.mark_running(first.run_id)
        result = run_simulation(_spec())
        store.mark_done(first.run_id, result, wall_time_s=0.5)

        second = _create(store, tenant="t2")
        store.mark_cached(second.run_id, store.get(first.run_id))
        final = store.get(second.run_id)
        assert final.status == "cached"
        assert final.cached_from == first.run_id
        assert final.wall_time_s == 0.0  # the point of the cache
        assert store.get_result(second.run_id) == result

    def test_cached_row_is_itself_a_cache_source(self, store):
        first = _create(store)
        store.mark_running(first.run_id)
        store.mark_done(first.run_id, run_simulation(_spec()), wall_time_s=0.5)
        second = _create(store)
        store.mark_cached(second.run_id, store.get(first.run_id))
        hit = store.lookup_cached(first.spec_hash)
        assert hit is not None and hit.status in ("done", "cached")


class TestQueriesAndStats:
    def test_list_runs_filters(self, store):
        a = _create(store, tenant="alice")
        b = _create(store, tenant="bob")
        store.mark_cancelled(b.run_id)
        assert {r.run_id for r in store.list_runs()} == {a.run_id, b.run_id}
        assert [r.run_id for r in store.list_runs(tenant="alice")] == [a.run_id]
        assert [r.run_id for r in store.list_runs(status="cancelled")] == [b.run_id]
        assert store.counts() == {"queued": 1, "cancelled": 1}

    def test_wall_time_stats(self, store):
        result = run_simulation(_spec())
        for wall in (1.0, 3.0):
            record = _create(store)
            store.mark_running(record.run_id)
            store.mark_done(record.run_id, result, wall_time_s=wall)
        stats = store.wall_time_stats()
        assert stats == {
            "executed_runs": 2,
            "total_wall_s": 4.0,
            "mean_wall_s": 2.0,
            "max_wall_s": 3.0,
        }

    def test_empty_wall_time_stats(self, store):
        assert store.wall_time_stats()["executed_runs"] == 0
        assert store.wall_time_stats()["mean_wall_s"] == 0.0


class TestPersistence:
    def test_results_survive_reopen(self, tmp_path):
        results_dir = str(tmp_path / "results")
        store = ResultStore(results_dir)
        record = _create(store)
        store.mark_running(record.run_id)
        result = run_simulation(_spec())
        store.mark_done(record.run_id, result, wall_time_s=0.7)
        store.close()

        reopened = ResultStore(results_dir)
        try:
            assert reopened.get(record.run_id).status == "done"
            assert reopened.get_result(record.run_id) == result
            # ...and the reopened store still answers cache lookups.
            assert reopened.lookup_cached(record.spec_hash) is not None
        finally:
            reopened.close()
        assert os.path.exists(os.path.join(results_dir, "runs.sqlite3"))
