"""ResultStore: lifecycle transitions, exact result round-trip, cache
lookup by spec hash, and persistence across reopen."""

import os

import pytest

from repro.experiments.base import run_simulation
from repro.service.schemas import spec_from_dict, spec_to_dict
from repro.service.store import ResultStore, RunRecord, UnknownRunError
from repro.config import canonical_hash, canonical_json

SPEC_PAYLOAD = {
    "targets": [{"app": "CG", "work_scale": 0.02}],
    "background": [{"microbench": "BBMA"}],
    "scheduler": "linux",
    "max_time_us": 200_000,
}


@pytest.fixture
def store():
    s = ResultStore(":memory:")
    yield s
    s.close()


def _spec():
    return spec_from_dict(SPEC_PAYLOAD)


def _create(store, tenant="t1", label=None) -> RunRecord:
    spec = _spec()
    return store.create(
        spec_hash=spec.spec_hash(),
        spec_json=canonical_json(spec_to_dict(spec)),
        tenant=tenant,
        label=label,
    )


class TestLifecycle:
    def test_create_is_queued(self, store):
        record = _create(store, label="first")
        assert record.status == "queued" and not record.terminal
        assert record.tenant == "t1" and record.label == "first"
        assert store.get(record.run_id) == record

    def test_done_round_trips_result_exactly(self, store):
        record = _create(store)
        store.mark_running(record.run_id)
        assert store.get(record.run_id).status == "running"
        result = run_simulation(_spec())
        store.mark_done(record.run_id, result, wall_time_s=1.25)
        final = store.get(record.run_id)
        assert final.status == "done" and final.terminal
        assert final.wall_time_s == 1.25
        assert store.get_result(record.run_id) == result

    def test_result_none_until_done(self, store):
        record = _create(store)
        assert store.get_result(record.run_id) is None

    def test_failed_records_error(self, store):
        record = _create(store)
        store.mark_running(record.run_id)
        store.mark_failed(record.run_id, "SimulationError: boom")
        final = store.get(record.run_id)
        assert final.status == "failed" and "boom" in final.error
        assert store.get_result(record.run_id) is None

    def test_cancelled(self, store):
        record = _create(store)
        store.mark_cancelled(record.run_id)
        assert store.get(record.run_id).status == "cancelled"

    def test_unknown_run_raises(self, store):
        with pytest.raises(UnknownRunError):
            store.get("nope")
        with pytest.raises(UnknownRunError):
            store.mark_running("nope")

    def test_spec_json_preserved(self, store):
        record = _create(store)
        text = store.get_spec_json(record.run_id)
        assert canonical_hash(spec_to_dict(spec_from_dict(
            __import__("json").loads(text)))) != ""  # decodes cleanly


class TestCacheLookup:
    def test_lookup_misses_before_any_done(self, store):
        record = _create(store)
        assert store.lookup_cached(record.spec_hash) is None
        store.mark_running(record.run_id)
        assert store.lookup_cached(record.spec_hash) is None

    def test_lookup_hits_after_done(self, store):
        record = _create(store)
        store.mark_running(record.run_id)
        result = run_simulation(_spec())
        store.mark_done(record.run_id, result, wall_time_s=0.5)
        hit = store.lookup_cached(record.spec_hash)
        assert hit is not None and hit.run_id == record.run_id

    def test_mark_cached_copies_result(self, store):
        first = _create(store)
        store.mark_running(first.run_id)
        result = run_simulation(_spec())
        store.mark_done(first.run_id, result, wall_time_s=0.5)

        second = _create(store, tenant="t2")
        store.mark_cached(second.run_id, store.get(first.run_id))
        final = store.get(second.run_id)
        assert final.status == "cached"
        assert final.cached_from == first.run_id
        assert final.wall_time_s == 0.0  # the point of the cache
        assert store.get_result(second.run_id) == result

    def test_cached_row_is_itself_a_cache_source(self, store):
        first = _create(store)
        store.mark_running(first.run_id)
        store.mark_done(first.run_id, run_simulation(_spec()), wall_time_s=0.5)
        second = _create(store)
        store.mark_cached(second.run_id, store.get(first.run_id))
        hit = store.lookup_cached(first.spec_hash)
        assert hit is not None and hit.status in ("done", "cached")


class TestQueriesAndStats:
    def test_list_runs_filters(self, store):
        a = _create(store, tenant="alice")
        b = _create(store, tenant="bob")
        store.mark_cancelled(b.run_id)
        assert {r.run_id for r in store.list_runs()} == {a.run_id, b.run_id}
        assert [r.run_id for r in store.list_runs(tenant="alice")] == [a.run_id]
        assert [r.run_id for r in store.list_runs(status="cancelled")] == [b.run_id]
        assert store.counts() == {"queued": 1, "cancelled": 1}

    def test_wall_time_stats(self, store):
        result = run_simulation(_spec())
        for wall in (1.0, 3.0):
            record = _create(store)
            store.mark_running(record.run_id)
            store.mark_done(record.run_id, result, wall_time_s=wall)
        stats = store.wall_time_stats()
        assert stats == {
            "executed_runs": 2,
            "total_wall_s": 4.0,
            "mean_wall_s": 2.0,
            "max_wall_s": 3.0,
        }

    def test_empty_wall_time_stats(self, store):
        assert store.wall_time_stats()["executed_runs"] == 0
        assert store.wall_time_stats()["mean_wall_s"] == 0.0


class TestDurability:
    def test_mark_running_charges_attempt_and_sets_lease(self, store):
        record = _create(store)
        assert record.attempts == 0
        store.mark_running(record.run_id, now=100.0, lease_s=60.0)
        running = store.get(record.run_id)
        assert running.attempts == 1
        assert running.lease_expires_at == 160.0

    def test_requeue_keeps_attempts_clears_execution_state(self, store):
        record = _create(store)
        store.mark_running(record.run_id, lease_s=60.0)
        store.requeue(record.run_id)
        requeued = store.get(record.run_id)
        assert requeued.status == "queued" and not requeued.terminal
        assert requeued.attempts == 1  # charged attempts stay charged
        assert requeued.started_at is None
        assert requeued.lease_expires_at is None
        # A later execution charges the next attempt on the same counter.
        store.mark_running(record.run_id)
        assert store.get(record.run_id).attempts == 2

    def test_quarantined_is_terminal_with_error(self, store):
        record = _create(store)
        store.mark_running(record.run_id, lease_s=60.0)
        store.mark_quarantined(record.run_id, "worker crashed twice", attempts=2)
        final = store.get(record.run_id)
        assert final.status == "quarantined" and final.terminal
        assert final.attempts == 2  # the executor's override wins
        assert "crashed" in final.error
        assert final.lease_expires_at is None
        assert store.counts() == {"quarantined": 1}

    def test_quarantined_rows_never_serve_the_cache(self, store):
        record = _create(store)
        store.mark_running(record.run_id)
        store.mark_quarantined(record.run_id, "poisoned")
        assert store.lookup_cached(record.spec_hash) is None

    def test_pending_runs_lists_queued_and_running_oldest_first(self, store):
        first = store.create(
            spec_hash="h1", spec_json="{}", tenant="t", label=None, now=1.0
        )
        second = store.create(
            spec_hash="h2", spec_json="{}", tenant="t", label=None, now=2.0
        )
        third = store.create(
            spec_hash="h3", spec_json="{}", tenant="t", label=None, now=3.0
        )
        store.mark_running(second.run_id)
        store.mark_cancelled(third.run_id)  # terminal: not pending
        pending = store.pending_runs()
        assert [r.run_id for r in pending] == [first.run_id, second.run_id]

    def test_list_runs_unknown_status_raises_with_allowed_values(self, store):
        with pytest.raises(ValueError, match="quarantined"):
            store.list_runs(status="bogus")
        # The valid statuses all filter cleanly.
        assert store.list_runs(status="quarantined") == []


class TestAuditPersistence:
    def _audited_done(self, store):
        spec = spec_from_dict(dict(SPEC_PAYLOAD, audit=True))
        record = store.create(
            spec_hash=spec.spec_hash(),
            spec_json=canonical_json(spec_to_dict(spec)),
            tenant="t1",
            label=None,
        )
        store.mark_running(record.run_id)
        store.mark_done(record.run_id, run_simulation(spec), wall_time_s=0.5)
        return record

    def test_unaudited_run_has_no_report(self, store):
        record = _create(store)
        store.mark_running(record.run_id)
        store.mark_done(record.run_id, run_simulation(_spec()), wall_time_s=0.5)
        assert store.get_audit(record.run_id) is None

    def test_unknown_run_raises(self, store):
        with pytest.raises(UnknownRunError):
            store.get_audit("nope")

    def test_audited_run_round_trips_report(self, store):
        record = self._audited_done(store)
        report = store.get_audit(record.run_id)
        assert report is not None
        assert report["violations"] == []
        assert sum(n for _, n in report["checks"]) > 0

    def test_cache_hit_copies_audit(self, store):
        source = self._audited_done(store)
        second = store.create(
            spec_hash=source.spec_hash, spec_json="{}", tenant="t2", label=None
        )
        store.mark_cached(second.run_id, store.get(source.run_id))
        assert store.get_audit(second.run_id) == store.get_audit(source.run_id)


#: The PR-8 (v1) schema, byte-for-byte: no attempts / lease_expires_at /
#: audit_json columns, user_version 1. The migration test opens a store
#: over a database created with exactly this.
_V1_SCHEMA = """
CREATE TABLE runs (
    run_id       TEXT PRIMARY KEY,
    spec_hash    TEXT NOT NULL,
    tenant       TEXT NOT NULL,
    label        TEXT,
    status       TEXT NOT NULL,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    wall_time_s  REAL,
    cached_from  TEXT,
    error        TEXT,
    spec_json    TEXT NOT NULL,
    result_json  TEXT
);
CREATE INDEX idx_runs_spec_hash ON runs(spec_hash, status);
CREATE INDEX idx_runs_tenant ON runs(tenant, submitted_at);
PRAGMA user_version = 1;
"""


class TestSchemaMigration:
    def _make_v1_db(self, results_dir):
        import sqlite3

        os.makedirs(results_dir, exist_ok=True)
        conn = sqlite3.connect(os.path.join(results_dir, "runs.sqlite3"))
        conn.executescript(_V1_SCHEMA)
        conn.execute(
            "INSERT INTO runs (run_id, spec_hash, tenant, status,"
            " submitted_at, spec_json) VALUES (?, ?, ?, ?, ?, ?)",
            ("legacy-1", "hash-1", "t1", "done", 1.0, "{}"),
        )
        conn.commit()
        conn.close()

    def test_v1_database_upgrades_in_place(self, tmp_path):
        results_dir = str(tmp_path / "results")
        self._make_v1_db(results_dir)
        store = ResultStore(results_dir)
        try:
            assert store.schema_version == 2
            legacy = store.get("legacy-1")
            assert legacy.status == "done"
            assert legacy.attempts == 0  # backfilled default
            assert legacy.lease_expires_at is None
            assert store.get_audit("legacy-1") is None
            # New-schema writes work against the migrated table.
            record = _create(store)
            store.mark_running(record.run_id, lease_s=30.0)
            assert store.get(record.run_id).attempts == 1
        finally:
            store.close()

    def test_migration_is_idempotent(self, tmp_path):
        results_dir = str(tmp_path / "results")
        self._make_v1_db(results_dir)
        for _ in range(3):  # every reopen re-runs the migration path
            store = ResultStore(results_dir)
            try:
                assert store.schema_version == 2
                assert store.get("legacy-1").status == "done"
            finally:
                store.close()

    def test_fresh_database_is_current_version(self, tmp_path):
        store = ResultStore(str(tmp_path / "fresh"))
        try:
            assert store.schema_version == 2
        finally:
            store.close()


class TestPersistence:
    def test_results_survive_reopen(self, tmp_path):
        results_dir = str(tmp_path / "results")
        store = ResultStore(results_dir)
        record = _create(store)
        store.mark_running(record.run_id)
        result = run_simulation(_spec())
        store.mark_done(record.run_id, result, wall_time_s=0.7)
        store.close()

        reopened = ResultStore(results_dir)
        try:
            assert reopened.get(record.run_id).status == "done"
            assert reopened.get_result(record.run_id) == result
            # ...and the reopened store still answers cache lookups.
            assert reopened.lookup_cached(record.spec_hash) is not None
        finally:
            reopened.close()
        assert os.path.exists(os.path.join(results_dir, "runs.sqlite3"))
