"""SimulationSpec.spec_hash(): stable, canonical, change-sensitive.

The hash is the service's cache key, so it carries three contracts:

* **round-trip**: serializing a spec to its canonical dict and parsing
  it back yields the same hash (the wire format loses nothing the hash
  sees);
* **cross-process stability**: the same spec hashes identically in a
  fresh interpreter — no dependence on PYTHONHASHSEED, dict order, or
  interning (sha256 over canonical JSON guarantees this; the test pins
  it);
* **sensitivity**: changing any simulation-relevant field changes the
  hash, while the excluded observability toggles (``profile``,
  ``audit`` — both documented bit-identical) do not.
"""

import subprocess
import sys
from dataclasses import replace

import pytest

from repro.dynamic.arrivals import PoissonArrivals
from repro.dynamic.config import DynamicWorkload, paper_mix
from repro.experiments.base import SimulationSpec
from repro.core.policies import LatestQuantumPolicy, QuantaWindowPolicy
from repro.service.schemas import spec_from_dict, spec_to_dict
from repro.workloads.suites import paper_app


def _spec(**overrides) -> SimulationSpec:
    base = dict(
        targets=[paper_app("CG").scaled(0.05)],
        background=[paper_app("Barnes").scaled(0.05)],
        scheduler=LatestQuantumPolicy(),
        seed=7,
        max_time_us=500_000.0,
    )
    base.update(overrides)
    return SimulationSpec(**base)


class TestRoundTrip:
    def test_dict_round_trip_preserves_hash(self):
        spec = _spec()
        again = spec_from_dict(spec_to_dict(spec))
        assert again.spec_hash() == spec.spec_hash()

    def test_round_trip_twice_is_fixed_point(self):
        spec = _spec()
        once = spec_to_dict(spec)
        twice = spec_to_dict(spec_from_dict(once))
        assert once == twice

    def test_dynamic_spec_round_trips(self):
        dyn = DynamicWorkload(
            mix=paper_mix(work_scale=0.05),
            arrivals=PoissonArrivals(rate_per_s=1.0),
            n_jobs=4,
        )
        spec = SimulationSpec(
            targets=[], scheduler=QuantaWindowPolicy(), dynamic=dyn, seed=3
        )
        again = spec_from_dict(spec_to_dict(spec))
        assert again.spec_hash() == spec.spec_hash()

    def test_hash_is_hex_sha256(self):
        digest = _spec().spec_hash()
        assert len(digest) == 64
        int(digest, 16)  # must be valid hex


class TestCrossProcess:
    def test_same_hash_in_fresh_interpreter(self):
        spec = _spec()
        # Rebuild the identical spec in a subprocess (different
        # PYTHONHASHSEED, cold caches) and compare digests.
        code = (
            "from repro.experiments.base import SimulationSpec\n"
            "from repro.core.policies import LatestQuantumPolicy\n"
            "from repro.workloads.suites import paper_app\n"
            "spec = SimulationSpec(\n"
            "    targets=[paper_app('CG').scaled(0.05)],\n"
            "    background=[paper_app('Barnes').scaled(0.05)],\n"
            "    scheduler=LatestQuantumPolicy(),\n"
            "    seed=7,\n"
            "    max_time_us=500_000.0,\n"
            ")\n"
            "print(spec.spec_hash())\n"
        )
        import os

        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED="12345")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        )
        assert out.stdout.strip() == spec.spec_hash()


class TestSensitivity:
    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 8},
            {"max_time_us": 600_000.0},
            {"trace": False},
            {"kernel": "linux26"},
            {"scheduler": "linux"},
            {"scheduler": QuantaWindowPolicy(window_length=7)},
            {"dedicated_migration_interval_us": 123_456.0},
            {"timeline_period_us": 10_000.0},
        ],
    )
    def test_any_field_change_changes_hash(self, change):
        assert _spec(**change).spec_hash() != _spec().spec_hash()

    def test_target_change_changes_hash(self):
        other = _spec(targets=[paper_app("SP").scaled(0.05)])
        assert other.spec_hash() != _spec().spec_hash()

    def test_work_scale_changes_hash(self):
        other = _spec(targets=[paper_app("CG").scaled(0.06)])
        assert other.spec_hash() != _spec().spec_hash()

    def test_policy_parameter_changes_hash(self):
        a = _spec(scheduler=QuantaWindowPolicy(window_length=3))
        b = _spec(scheduler=QuantaWindowPolicy(window_length=4))
        assert a.spec_hash() != b.spec_hash()

    def test_profile_and_audit_do_not_change_hash(self):
        # Both toggles are documented bit-identical observability: runs
        # with and without them produce equal RunResults, so caching
        # across them is sound and intended.
        spec = _spec()
        assert replace(spec, profile=True).spec_hash() == spec.spec_hash()
        assert replace(spec, audit=True).spec_hash() == spec.spec_hash()

    def test_equal_specs_equal_hashes(self):
        assert _spec().spec_hash() == _spec().spec_hash()
