"""The WSGI HTTP layer, driven at the environ level (no sockets).

Each test builds a WSGI environ by hand and calls the app directly —
faster and more deterministic than binding ports, and it exercises
exactly the code the wsgiref server runs. The full socket path is
covered by ``benchmarks/service_smoke.py`` (the CI ``service-smoke``
job).
"""

import io
import json

import pytest

from repro.service import ResultStore, SimulationService
from repro.service.api import create_wsgi_app

PAYLOAD = {
    "spec": {
        "targets": [{"app": "CG", "work_scale": 0.02}],
        "background": [{"microbench": "BBMA"}],
        "scheduler": "linux",
        "max_time_us": 200_000,
    }
}


@pytest.fixture
def service():
    store = ResultStore(":memory:")
    svc = SimulationService(store, queue_depth=4, jobs=1).start()
    yield svc
    svc.shutdown(drain=False, timeout=10.0)
    store.close()


@pytest.fixture
def app(service):
    return create_wsgi_app(service)


def call_with_headers(app, method: str, path: str, body: dict | None = None):
    """Invoke the WSGI app; returns (status_code, JSON body, headers)."""
    raw = json.dumps(body).encode() if body is not None else b""
    query = ""
    if "?" in path:
        path, query = path.split("?", 1)
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    captured: dict = {}

    def start_response(status, headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(headers)

    chunks = app(environ, start_response)
    payload = b"".join(chunks)
    assert captured["headers"]["Content-Type"] == "application/json"
    assert int(captured["headers"]["Content-Length"]) == len(payload)
    return captured["status"], json.loads(payload), captured["headers"]


def call(app, method: str, path: str, body: dict | None = None):
    """Invoke the WSGI app; returns (status_code, decoded JSON body)."""
    status, payload, _ = call_with_headers(app, method, path, body)
    return status, payload


class TestSubmitAndPoll:
    def test_submit_poll_result(self, app, service):
        status, accepted = call(app, "POST", "/v1/runs", PAYLOAD)
        assert status == 202 and accepted["status"] == "queued"
        run_id = accepted["run_id"]
        service.wait(run_id, timeout=120.0)

        status, record = call(app, "GET", f"/v1/runs/{run_id}")
        assert status == 200 and record["status"] == "done"

        status, body = call(app, "GET", f"/v1/runs/{run_id}/result")
        assert status == 200
        assert body["run"]["run_id"] == run_id
        assert body["result"]["makespan_us"] > 0

    def test_cached_resubmit_returns_200(self, app, service):
        _, first = call(app, "POST", "/v1/runs", PAYLOAD)
        service.wait(first["run_id"], timeout=120.0)
        status, second = call(app, "POST", "/v1/runs", PAYLOAD)
        assert status == 200 and second["cached"]
        assert second["cached_from"] == first["run_id"]

    def test_result_before_done_is_409(self, app, service):
        # No dispatcher race: submit against a full-capacity queue by
        # polling a just-submitted run immediately — if it already
        # finished, the 409 path is still covered by the store check
        # below via an unknown status guard.
        _, accepted = call(app, "POST", "/v1/runs", PAYLOAD)
        status, body = call(app, "GET", f"/v1/runs/{accepted['run_id']}/result")
        if status == 409:
            assert body["error"]["type"] == "not_ready"
        else:  # the run beat us to completion — equally valid
            assert status == 200
        service.wait(accepted["run_id"], timeout=120.0)

    def test_list_runs_with_filters(self, app, service):
        _, accepted = call(app, "POST", "/v1/runs", PAYLOAD)
        service.wait(accepted["run_id"], timeout=120.0)
        status, body = call(app, "GET", "/v1/runs?status=done&limit=5")
        assert status == 200
        assert [r["run_id"] for r in body["runs"]] == [accepted["run_id"]]


class TestAuditEndpoint:
    def test_audited_run_serves_report(self, app, service):
        audited = {"spec": dict(PAYLOAD["spec"], audit=True)}
        _, accepted = call(app, "POST", "/v1/runs", audited)
        service.wait(accepted["run_id"], timeout=120.0)
        status, body = call(app, "GET", f"/v1/runs/{accepted['run_id']}/audit")
        assert status == 200
        assert body["run_id"] == accepted["run_id"]
        assert body["audit"]["violations"] == []
        checks = dict((name, n) for name, n in body["audit"]["checks"])
        assert sum(checks.values()) > 0

    def test_cache_hit_copies_audit_report(self, app, service):
        audited = {"spec": dict(PAYLOAD["spec"], audit=True)}
        _, first = call(app, "POST", "/v1/runs", audited)
        service.wait(first["run_id"], timeout=120.0)
        status, second = call(app, "POST", "/v1/runs", audited)
        assert status == 200 and second["cached"]
        status, body = call(app, "GET", f"/v1/runs/{second['run_id']}/audit")
        assert status == 200
        assert body["status"] == "cached"
        assert body["audit"]["violations"] == []

    def test_unaudited_run_is_404(self, app, service):
        _, accepted = call(app, "POST", "/v1/runs", PAYLOAD)
        service.wait(accepted["run_id"], timeout=120.0)
        status, body = call(app, "GET", f"/v1/runs/{accepted['run_id']}/audit")
        assert status == 404 and body["error"]["type"] == "no_audit"

    def test_unknown_run_audit_is_404(self, app):
        status, body = call(app, "GET", "/v1/runs/deadbeef/audit")
        assert status == 404 and body["error"]["type"] == "not_found"


class TestErrorMapping:
    def test_validation_error_is_400_with_path(self, app):
        bad = {"spec": {"targets": [{"app": "NOPE"}]}}
        status, body = call(app, "POST", "/v1/runs", bad)
        assert status == 400
        assert body["error"]["type"] == "validation"
        assert body["error"]["path"] == "request.spec.targets[0].app"

    def test_queue_full_is_503(self):
        # Saturation is 503, distinct from the per-tenant rate limit's 429.
        store = ResultStore(":memory:")
        service = SimulationService(store, queue_depth=1, jobs=1)  # no dispatcher
        app = create_wsgi_app(service)
        try:
            status, _ = call(app, "POST", "/v1/runs", PAYLOAD)
            assert status == 202
            other = {"spec": dict(PAYLOAD["spec"], seed=1)}
            status, body = call(app, "POST", "/v1/runs", other)
            assert status == 503 and body["error"]["type"] == "queue_full"
        finally:
            store.close()

    def test_rate_limited_is_429_with_retry_after(self):
        from repro.service.ratelimit import RateLimitConfig

        store = ResultStore(":memory:")
        service = SimulationService(
            store,
            queue_depth=16,
            jobs=1,  # no dispatcher: submissions stay queued
            rate_limit=RateLimitConfig(rate_per_s=0.5, burst=1.0),
        )
        app = create_wsgi_app(service)
        try:
            status, _ = call(app, "POST", "/v1/runs", PAYLOAD)
            assert status == 202  # the burst token
            other = {"spec": dict(PAYLOAD["spec"], seed=1)}
            status, body, headers = call_with_headers(app, "POST", "/v1/runs", other)
            assert status == 429
            assert body["error"]["type"] == "rate_limited"
            assert body["error"]["retry_after_s"] > 0
            assert int(headers["Retry-After"]) >= 1
        finally:
            store.close()

    def test_rate_limit_is_per_tenant(self):
        from repro.service.ratelimit import RateLimitConfig

        store = ResultStore(":memory:")
        service = SimulationService(
            store,
            queue_depth=16,
            jobs=1,
            rate_limit=RateLimitConfig(rate_per_s=0.5, burst=1.0),
        )
        app = create_wsgi_app(service)
        try:
            assert call(app, "POST", "/v1/runs", PAYLOAD)[0] == 202
            assert call(app, "POST", "/v1/runs", PAYLOAD)[0] == 429
            # A different tenant still has its own full bucket.
            other_tenant = dict(PAYLOAD, tenant="other")
            assert call(app, "POST", "/v1/runs", other_tenant)[0] == 202
        finally:
            store.close()

    def test_unknown_status_filter_is_400_with_allowed_values(self, app):
        status, body = call(app, "GET", "/v1/runs?status=bogus")
        assert status == 400
        assert body["error"]["type"] == "validation"
        assert "quarantined" in body["error"]["allowed"]
        assert "queued" in body["error"]["allowed"]

    def test_draining_is_503(self, app, service):
        service.shutdown(drain=True, timeout=30.0)
        status, body = call(app, "POST", "/v1/runs", PAYLOAD)
        assert status == 503 and body["error"]["type"] == "draining"

    def test_unknown_run_is_404(self, app):
        status, body = call(app, "GET", "/v1/runs/deadbeef")
        assert status == 404 and body["error"]["type"] == "not_found"
        status, _ = call(app, "GET", "/v1/runs/deadbeef/result")
        assert status == 404

    def test_unknown_route_is_404(self, app):
        assert call(app, "GET", "/v2/nope")[0] == 404
        assert call(app, "GET", "/")[0] == 404

    def test_wrong_method_is_405(self, app):
        assert call(app, "DELETE", "/v1/stats")[0] == 405
        assert call(app, "POST", "/v1/healthz")[0] == 405

    def test_malformed_json_is_400(self, app):
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/v1/runs",
            "QUERY_STRING": "",
            "CONTENT_LENGTH": "9",
            "wsgi.input": io.BytesIO(b"not json!"),
        }
        captured = {}
        chunks = app(environ, lambda s, h: captured.update(status=int(s.split()[0])))
        body = json.loads(b"".join(chunks))
        assert captured["status"] == 400
        assert body["error"]["type"] == "validation"

    def test_empty_body_is_400(self, app):
        status, body = call(app, "POST", "/v1/runs")
        assert status == 400

    def test_non_object_body_is_400(self, app):
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/v1/runs",
            "QUERY_STRING": "",
            "CONTENT_LENGTH": "7",
            "wsgi.input": io.BytesIO(b"[1,2,3]"),
        }
        captured = {}
        chunks = app(environ, lambda s, h: captured.update(status=int(s.split()[0])))
        assert captured["status"] == 400
        json.loads(b"".join(chunks))

    def test_bad_limit_is_400(self, app):
        status, _ = call(app, "GET", "/v1/runs?limit=banana")
        assert status == 400


class TestStatsAndHealth:
    def test_healthz(self, app):
        status, body = call(app, "GET", "/v1/healthz")
        assert status == 200 and body["ok"] and body["dispatcher_running"]

    def test_stats_sections(self, app, service):
        _, accepted = call(app, "POST", "/v1/runs", PAYLOAD)
        service.wait(accepted["run_id"], timeout=120.0)
        call(app, "POST", "/v1/runs", PAYLOAD)  # cache hit
        status, stats = call(app, "GET", "/v1/stats")
        assert status == 200
        assert set(stats) == {"queue", "dispatch", "cache", "store", "wall_time"}
        assert stats["dispatch"]["executed_runs"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["hit_rate"] == 0.5
        assert stats["store"]["done"] == 1
        assert stats["wall_time"]["executed_runs"] == 1
        assert stats["wall_time"]["max_wall_s"] > 0


class TestOptionalFastApiExtra:
    def test_absent_fastapi_raises_actionable_error(self, service):
        # The tier-1 environment does not install the [service] extra;
        # the error must say how to get it or what to use instead.
        from repro.service.api import create_fastapi_app

        try:
            import fastapi  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError, match=r"repro\[service\]"):
                create_fastapi_app(service)
        else:  # pragma: no cover - extra installed
            assert create_fastapi_app(service) is not None
