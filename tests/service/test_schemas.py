"""Request schema validation and the spec/result wire codecs.

Two halves:

* **validation** — malformed payloads fail with
  :class:`~repro.service.schemas.SpecValidationError` whose ``path``
  names the offending field (the actionable-4xx contract);
* **codecs** — ``spec_to_dict``/``spec_from_dict`` and
  ``result_to_dict``/``result_from_dict`` are exact inverses on real
  simulation objects, including the nested ``DynamicStats``/
  ``FaultStats``/``AuditReport`` sections.
"""

import pickle

import pytest

from repro.core.policies import EwmaPolicy, OraclePolicy, QuantaWindowPolicy
from repro.core.policies_model import ModelDrivenPolicy
from repro.experiments.base import run_simulation
from repro.service.schemas import (
    SpecValidationError,
    parse_submit_request,
    result_from_dict,
    result_to_dict,
    spec_from_dict,
    spec_to_dict,
)


def _minimal(**spec_overrides) -> dict:
    spec = {
        "targets": [{"app": "CG", "work_scale": 0.02}],
        "background": [{"microbench": "BBMA"}],
        "scheduler": "linux",
        "max_time_us": 200_000,
    }
    spec.update(spec_overrides)
    return {"spec": spec}


def _error_path(payload) -> str:
    with pytest.raises(SpecValidationError) as excinfo:
        parse_submit_request(payload)
    return excinfo.value.path


class TestRequestValidation:
    def test_minimal_request_parses(self):
        request = parse_submit_request(_minimal())
        assert request.tenant == "default"
        assert request.label is None
        assert not request.no_cache

    def test_tenant_label_no_cache(self):
        payload = _minimal()
        payload.update(tenant="team-a", label="sweep 1", no_cache=True)
        request = parse_submit_request(payload)
        assert (request.tenant, request.label, request.no_cache) == (
            "team-a", "sweep 1", True
        )

    def test_missing_spec_names_path(self):
        with pytest.raises(SpecValidationError, match="spec"):
            parse_submit_request({})

    def test_non_dict_body(self):
        assert _error_path([1, 2]) == "request"

    def test_unknown_top_level_field(self):
        payload = _minimal()
        payload["bogus"] = 1
        assert _error_path(payload) == "request"

    def test_unknown_spec_field(self):
        assert _error_path(_minimal(bogus=1)) == "request.spec"

    def test_bad_app_name_names_element(self):
        payload = _minimal(targets=[{"app": "NOPE"}])
        assert _error_path(payload) == "request.spec.targets[0].app"

    def test_bad_scheduler_string(self):
        assert _error_path(_minimal(scheduler="fifo")) == "request.spec.scheduler"

    def test_bad_policy_name(self):
        payload = _minimal(scheduler={"policy": "no_such"})
        assert _error_path(payload) == "request.spec.scheduler.policy"

    def test_bad_policy_parameter_type(self):
        payload = _minimal(scheduler={"policy": "quanta_window", "window_length": "x"})
        assert _error_path(payload) == "request.spec.scheduler.window_length"

    def test_negative_seed_rejected_with_path(self):
        assert _error_path(_minimal(seed=-1)) == "request.spec.seed"

    def test_bool_is_not_an_int(self):
        assert _error_path(_minimal(seed=True)) == "request.spec.seed"

    def test_nan_rejected(self):
        assert _error_path(_minimal(max_time_us=float("nan"))) == (
            "request.spec.max_time_us"
        )

    def test_empty_workload_rejected(self):
        payload = {"spec": {"targets": [], "scheduler": "linux"}}
        assert _error_path(payload) == "request.spec.targets"

    def test_arrivals_under_dedicated_rejected(self):
        payload = _minimal(
            scheduler="dedicated",
            arrivals=[[1_000.0, {"app": "SP", "work_scale": 0.02}]],
        )
        assert _error_path(payload) == "request.spec.scheduler"

    def test_bad_tenant_rejected(self):
        payload = _minimal()
        payload["tenant"] = ""
        assert _error_path(payload) == "request.tenant"

    def test_error_body_is_actionable(self):
        try:
            parse_submit_request(_minimal(scheduler="fifo"))
        except SpecValidationError as exc:
            body = exc.to_dict()
            assert body["type"] == "validation"
            assert body["path"] == "request.spec.scheduler"
            assert "fifo" in body["message"]
        else:  # pragma: no cover
            pytest.fail("expected SpecValidationError")

    def test_error_survives_pickling(self):
        # Errors cross process boundaries (worker -> parent); the path
        # annotation must survive the trip.
        err = SpecValidationError("request.spec.seed", "must be >= 0")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.path == err.path and clone.message == err.message


class TestSchedulerCodec:
    @pytest.mark.parametrize(
        "policy",
        [
            QuantaWindowPolicy(window_length=5),
            EwmaPolicy(alpha=0.3),
            ModelDrivenPolicy(idle_penalty=0.2, fairness_weight=0.1),
            OraclePolicy(true_rates={"CG": 40.0}),
        ],
    )
    def test_policy_round_trip(self, policy):
        spec = spec_from_dict(_minimal()["spec"])
        payload = spec_to_dict(spec)
        from repro.service.schemas import scheduler_from_json, scheduler_to_json

        decoded = scheduler_from_json(scheduler_to_json(policy), "spec.scheduler")
        assert type(decoded) is type(policy)
        assert scheduler_to_json(decoded) == scheduler_to_json(policy)
        assert payload["scheduler"] == "linux"


class TestResultCodec:
    def test_static_result_round_trips_exactly(self):
        spec = spec_from_dict(_minimal()["spec"])
        result = run_simulation(spec)
        decoded = result_from_dict(result_to_dict(result))
        assert decoded == result  # dataclass equality: bit-identical
        # compare=False observability fields round-trip too.
        assert decoded.bus_solve_calls == result.bus_solve_calls
        assert decoded.makespan_us == result.makespan_us

    def test_dynamic_result_round_trips_exactly(self):
        spec = spec_from_dict(
            {
                "targets": [],
                "scheduler": {"policy": "quanta_window"},
                "dynamic": {
                    "arrivals": {"kind": "poisson", "rate_per_s": 2.0},
                    "mix": {"paper": ["CG", "SP"], "work_scale": 0.02},
                    "n_jobs": 3,
                },
                "seed": 11,
            }
        )
        result = run_simulation(spec)
        assert result.dynamic is not None
        decoded = result_from_dict(result_to_dict(result))
        assert decoded == result
        assert decoded.dynamic == result.dynamic

    def test_result_json_is_canonically_serializable(self):
        from repro.config import canonical_json

        spec = spec_from_dict(_minimal()["spec"])
        result = run_simulation(spec)
        text = canonical_json(result_to_dict(result))
        assert isinstance(text, str) and text.startswith("{")
