"""Request schema validation and the spec/result wire codecs.

Two halves:

* **validation** — malformed payloads fail with
  :class:`~repro.service.schemas.SpecValidationError` whose ``path``
  names the offending field (the actionable-4xx contract);
* **codecs** — ``spec_to_dict``/``spec_from_dict`` and
  ``result_to_dict``/``result_from_dict`` are exact inverses on real
  simulation objects, including the nested ``DynamicStats``/
  ``FaultStats``/``AuditReport`` sections.
"""

import pickle

import pytest

from repro.core.policies import EwmaPolicy, OraclePolicy, QuantaWindowPolicy
from repro.core.policies_model import ModelDrivenPolicy
from repro.experiments.base import run_simulation
from repro.service.schemas import (
    SpecValidationError,
    parse_submit_request,
    result_from_dict,
    result_to_dict,
    spec_from_dict,
    spec_to_dict,
)


def _minimal(**spec_overrides) -> dict:
    spec = {
        "targets": [{"app": "CG", "work_scale": 0.02}],
        "background": [{"microbench": "BBMA"}],
        "scheduler": "linux",
        "max_time_us": 200_000,
    }
    spec.update(spec_overrides)
    return {"spec": spec}


def _error_path(payload) -> str:
    with pytest.raises(SpecValidationError) as excinfo:
        parse_submit_request(payload)
    return excinfo.value.path


class TestRequestValidation:
    def test_minimal_request_parses(self):
        request = parse_submit_request(_minimal())
        assert request.tenant == "default"
        assert request.label is None
        assert not request.no_cache

    def test_tenant_label_no_cache(self):
        payload = _minimal()
        payload.update(tenant="team-a", label="sweep 1", no_cache=True)
        request = parse_submit_request(payload)
        assert (request.tenant, request.label, request.no_cache) == (
            "team-a", "sweep 1", True
        )

    def test_missing_spec_names_path(self):
        with pytest.raises(SpecValidationError, match="spec"):
            parse_submit_request({})

    def test_non_dict_body(self):
        assert _error_path([1, 2]) == "request"

    def test_unknown_top_level_field(self):
        payload = _minimal()
        payload["bogus"] = 1
        assert _error_path(payload) == "request"

    def test_unknown_spec_field(self):
        assert _error_path(_minimal(bogus=1)) == "request.spec"

    def test_bad_app_name_names_element(self):
        payload = _minimal(targets=[{"app": "NOPE"}])
        assert _error_path(payload) == "request.spec.targets[0].app"

    def test_bad_scheduler_string(self):
        assert _error_path(_minimal(scheduler="fifo")) == "request.spec.scheduler"

    def test_bad_policy_name(self):
        payload = _minimal(scheduler={"policy": "no_such"})
        assert _error_path(payload) == "request.spec.scheduler.policy"

    def test_bad_policy_parameter_type(self):
        payload = _minimal(scheduler={"policy": "quanta_window", "window_length": "x"})
        assert _error_path(payload) == "request.spec.scheduler.window_length"

    def test_negative_seed_rejected_with_path(self):
        assert _error_path(_minimal(seed=-1)) == "request.spec.seed"

    def test_bool_is_not_an_int(self):
        assert _error_path(_minimal(seed=True)) == "request.spec.seed"

    def test_nan_rejected(self):
        assert _error_path(_minimal(max_time_us=float("nan"))) == (
            "request.spec.max_time_us"
        )

    def test_empty_workload_rejected(self):
        payload = {"spec": {"targets": [], "scheduler": "linux"}}
        assert _error_path(payload) == "request.spec.targets"

    def test_arrivals_under_dedicated_rejected(self):
        payload = _minimal(
            scheduler="dedicated",
            arrivals=[[1_000.0, {"app": "SP", "work_scale": 0.02}]],
        )
        assert _error_path(payload) == "request.spec.scheduler"

    def test_bad_tenant_rejected(self):
        payload = _minimal()
        payload["tenant"] = ""
        assert _error_path(payload) == "request.tenant"

    def test_error_body_is_actionable(self):
        try:
            parse_submit_request(_minimal(scheduler="fifo"))
        except SpecValidationError as exc:
            body = exc.to_dict()
            assert body["type"] == "validation"
            assert body["path"] == "request.spec.scheduler"
            assert "fifo" in body["message"]
        else:  # pragma: no cover
            pytest.fail("expected SpecValidationError")

    def test_error_survives_pickling(self):
        # Errors cross process boundaries (worker -> parent); the path
        # annotation must survive the trip.
        err = SpecValidationError("request.spec.seed", "must be >= 0")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.path == err.path and clone.message == err.message


class TestSchedulerCodec:
    @pytest.mark.parametrize(
        "policy",
        [
            QuantaWindowPolicy(window_length=5),
            EwmaPolicy(alpha=0.3),
            ModelDrivenPolicy(idle_penalty=0.2, fairness_weight=0.1),
            OraclePolicy(true_rates={"CG": 40.0}),
        ],
    )
    def test_policy_round_trip(self, policy):
        spec = spec_from_dict(_minimal()["spec"])
        payload = spec_to_dict(spec)
        from repro.service.schemas import scheduler_from_json, scheduler_to_json

        decoded = scheduler_from_json(scheduler_to_json(policy), "spec.scheduler")
        assert type(decoded) is type(policy)
        assert scheduler_to_json(decoded) == scheduler_to_json(policy)
        assert payload["scheduler"] == "linux"


class TestResultCodec:
    def test_static_result_round_trips_exactly(self):
        spec = spec_from_dict(_minimal()["spec"])
        result = run_simulation(spec)
        decoded = result_from_dict(result_to_dict(result))
        assert decoded == result  # dataclass equality: bit-identical
        # compare=False observability fields round-trip too.
        assert decoded.bus_solve_calls == result.bus_solve_calls
        assert decoded.makespan_us == result.makespan_us

    def test_dynamic_result_round_trips_exactly(self):
        spec = spec_from_dict(
            {
                "targets": [],
                "scheduler": {"policy": "quanta_window"},
                "dynamic": {
                    "arrivals": {"kind": "poisson", "rate_per_s": 2.0},
                    "mix": {"paper": ["CG", "SP"], "work_scale": 0.02},
                    "n_jobs": 3,
                },
                "seed": 11,
            }
        )
        result = run_simulation(spec)
        assert result.dynamic is not None
        decoded = result_from_dict(result_to_dict(result))
        assert decoded == result
        assert decoded.dynamic == result.dynamic

    def test_result_json_is_canonically_serializable(self):
        from repro.config import canonical_json

        spec = spec_from_dict(_minimal()["spec"])
        result = run_simulation(spec)
        text = canonical_json(result_to_dict(result))
        assert isinstance(text, str) and text.startswith("{")


class TestArrivalShapeCodec:
    def _round_trip(self, arrivals):
        from repro.service.schemas import arrivals_from_dict, arrivals_to_dict

        return arrivals_from_dict(arrivals_to_dict(arrivals), "dynamic.arrivals")

    def test_shaped_round_trips(self):
        from repro.dynamic import DiurnalShape, PoissonArrivals, ShapedArrivals

        proc = ShapedArrivals(
            base=PoissonArrivals(rate_per_s=2.0),
            shape=DiurnalShape(period_s=30.0, amplitude=0.4, phase=0.1),
        )
        assert self._round_trip(proc) == proc

    def test_nested_shaped_round_trips(self):
        from repro.dynamic import (
            DiurnalShape,
            FlashCrowdShape,
            PoissonArrivals,
            ShapedArrivals,
        )

        proc = ShapedArrivals(
            base=ShapedArrivals(
                base=PoissonArrivals(rate_per_s=2.0),
                shape=DiurnalShape(period_s=30.0, amplitude=0.4),
            ),
            shape=FlashCrowdShape(at_s=5.0, duration_s=2.0, magnitude=3.0),
        )
        assert self._round_trip(proc) == proc

    def test_shaped_payload_validated(self):
        from repro.service.schemas import arrivals_from_dict

        with pytest.raises(SpecValidationError):
            arrivals_from_dict({"kind": "shaped"}, "dynamic.arrivals")
        with pytest.raises(SpecValidationError):
            arrivals_from_dict(
                {
                    "kind": "shaped",
                    "base": {"kind": "poisson", "rate_per_s": 1.0},
                    "shape": {"kind": "lunar"},
                },
                "dynamic.arrivals",
            )


class TestJobMixCodec:
    def _round_trip(self, mix):
        from repro.service.schemas import job_mix_from_dict, job_mix_to_dict

        return job_mix_from_dict(job_mix_to_dict(mix), "dynamic.mix")

    def test_plain_mix_payload_untagged(self):
        from repro.dynamic import paper_mix
        from repro.service.schemas import job_mix_to_dict

        payload = job_mix_to_dict(paper_mix(work_scale=0.05))
        # The pre-existing wire format: no "kind" tag, so old spec hashes
        # for plain mixes are unchanged.
        assert set(payload) == {"entries"}

    def test_family_mixes_round_trip(self):
        from repro.dynamic import (
            BurstyMix,
            HotspotMix,
            SequentialMix,
            ZipfianMix,
            paper_mix,
        )

        entries = paper_mix(work_scale=0.05).entries
        for mix in [
            ZipfianMix(entries=entries, exponent=1.3),
            HotspotMix(entries=entries, hot_fraction=0.7, hot_index=1),
            SequentialMix(entries=entries, run_length=3),
            BurstyMix(entries=entries, mean_run_length=6.0),
        ]:
            decoded = self._round_trip(mix)
            assert type(decoded) is type(mix)
            assert decoded == mix

    def test_unknown_kind_rejected(self):
        from repro.service.schemas import job_mix_from_dict

        with pytest.raises(SpecValidationError):
            job_mix_from_dict(
                {"kind": "pareto", "paper": ["CG"], "work_scale": 0.05},
                "dynamic.mix",
            )


class TestStreamingResultCodec:
    def _dynamic_spec(self, **extra):
        payload = {
            "targets": [],
            "scheduler": {"policy": "quanta_window"},
            "dynamic": {
                "arrivals": {"kind": "poisson", "rate_per_s": 2.0},
                "mix": {"paper": ["CG", "SP"], "work_scale": 0.02},
                "n_jobs": 3,
                **extra,
            },
            "seed": 11,
        }
        return spec_from_dict(payload)

    def test_record_jobs_round_trips_in_spec(self):
        from repro.service.schemas import spec_to_dict

        spec = self._dynamic_spec(record_jobs=False)
        assert spec.dynamic.record_jobs is False
        payload = spec_to_dict(spec)
        assert payload["dynamic"]["record_jobs"] is False
        # Policy objects don't define __eq__; the dynamic section does.
        assert spec_from_dict(payload).dynamic == spec.dynamic

    def test_records_off_result_round_trips_exactly(self):
        result = run_simulation(self._dynamic_spec(record_jobs=False))
        assert result.dynamic.jobs == ()
        assert result.dynamic.streaming is not None
        decoded = result_from_dict(result_to_dict(result))
        assert decoded == result
        assert decoded.dynamic.streaming == result.dynamic.streaming

    def test_streaming_summary_survives_json(self):
        from repro.config import canonical_json
        import json

        result = run_simulation(self._dynamic_spec(record_jobs=False))
        text = canonical_json(result_to_dict(result))
        decoded = result_from_dict(json.loads(text))
        assert decoded.dynamic.streaming == result.dynamic.streaming
