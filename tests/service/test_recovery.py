"""Restart recovery: dispositions of orphaned store rows, and the
shutdown races around them.

A service process that crashes (or is SIGKILLed) leaves its accepted
work behind as non-terminal store rows — ``queued`` rows the dispatcher
never took, and ``running`` rows whose executor died with the process.
These tests build exactly those rows (by submitting through a service
whose dispatcher never started, then abandoning it — the in-process
equivalent of a crash) and assert the next service's recovery pass
drives every one to the documented disposition. The full out-of-process
version, with real SIGKILLs, is ``benchmarks/chaos_smoke.py``.
"""

import threading

import pytest

from repro.config import canonical_json
from repro.service import ResultStore, SimulationService
from repro.service.schemas import spec_from_dict, spec_to_dict

PAYLOAD = {
    "spec": {
        "targets": [{"app": "CG", "work_scale": 0.02}],
        "background": [{"microbench": "BBMA"}],
        "scheduler": {"policy": "latest_quantum"},
        "max_time_us": 200_000,
    }
}


def _payload(seed: int) -> dict:
    return {"spec": dict(PAYLOAD["spec"], seed=seed)}


@pytest.fixture
def store():
    s = ResultStore(":memory:")
    yield s
    s.close()


def _orphan(store, seed: int, attempts: int = 0, running: bool = False):
    """A store row as a dead service process would have left it."""
    spec = spec_from_dict(_payload(seed)["spec"])
    record = store.create(
        spec_hash=spec.spec_hash(),
        spec_json=canonical_json(spec_to_dict(spec)),
        tenant="t1",
    )
    for _ in range(attempts):
        store.mark_running(record.run_id, lease_s=60.0)
        store.requeue(record.run_id)
    if running:
        store.mark_running(record.run_id, lease_s=60.0)
    return record.run_id


class TestRecoveryDispositions:
    def test_orphaned_queued_rows_requeued_and_complete(self, store):
        run_ids = [_orphan(store, seed) for seed in range(3)]
        service = SimulationService(store, queue_depth=8, jobs=1).start()
        try:
            for run_id in run_ids:
                assert service.wait(run_id, timeout=120.0).status == "done"
            stats = service.stats()
            assert stats.recovered_requeued == 3
            assert stats.recovered_quarantined == 0
        finally:
            service.shutdown(drain=False, timeout=10.0)

    def test_orphaned_running_row_requeued_with_attempt_charged(self, store):
        run_id = _orphan(store, seed=1, running=True)  # died mid-execution
        service = SimulationService(store, queue_depth=8, jobs=1).start()
        try:
            record = service.wait(run_id, timeout=120.0)
            assert record.status == "done"
            # One attempt from the dead process, one from the rerun.
            assert record.attempts == 2
            assert record.lease_expires_at is None
        finally:
            service.shutdown(drain=False, timeout=10.0)

    def test_exhausted_orphan_quarantined_not_rerun(self, store):
        doomed = _orphan(store, seed=1, attempts=1, running=True)  # 2 attempts
        fresh = _orphan(store, seed=2)
        service = SimulationService(
            store, queue_depth=8, jobs=1, max_attempts=2
        ).start()
        try:
            record = service.wait(doomed, timeout=120.0)
            assert record.status == "quarantined"
            assert record.attempts == 2  # budget spent, not incremented
            assert "service restarts" in record.error
            assert service.wait(fresh, timeout=120.0).status == "done"
            stats = service.stats()
            assert stats.recovered_quarantined == 1
            assert stats.recovered_requeued == 1
            assert stats.quarantined_runs == 0  # recovery's, not execution's
        finally:
            service.shutdown(drain=False, timeout=10.0)

    def test_recovery_skipped_when_queue_is_live(self, store):
        # An in-process restart: the rows in the queue have a live owner,
        # so recovery must not double-enqueue them.
        service = SimulationService(store, queue_depth=8, jobs=1)  # no dispatcher
        accepted = service.submit(PAYLOAD)
        assert service.recover() == {"requeued": 0, "quarantined": 0}
        assert store.get(accepted["run_id"]).status == "queued"
        assert service.queue.depth == 1  # exactly the one live entry

    def test_backlog_overflowing_the_queue_is_cancelled_not_stranded(self, store):
        run_ids = [_orphan(store, seed) for seed in range(4)]
        service = SimulationService(store, queue_depth=2, jobs=1)  # no dispatcher
        summary = service.recover()
        assert summary == {"requeued": 2, "quarantined": 0}
        statuses = sorted(store.get(r).status for r in run_ids)
        assert statuses == ["cancelled", "cancelled", "queued", "queued"]
        assert not any(
            store.get(r).status not in ("queued", "cancelled") for r in run_ids
        )


class TestShutdownRaces:
    def test_concurrent_drain_and_cancel_leave_no_row_behind(self, store):
        # One caller politely drains while another pulls the plug. Either
        # order is fine; what must hold is: no deadlock, dispatcher down,
        # and every accepted run terminal (done or cancelled — never a
        # stranded 'queued'/'running' row).
        service = SimulationService(store, queue_depth=16, jobs=1)
        run_ids = [service.submit(_payload(seed))["run_id"] for seed in range(4)]
        service.start()

        drainer = threading.Thread(
            target=service.shutdown, kwargs={"drain": True, "timeout": 60.0}
        )
        drainer.start()
        service.shutdown(drain=False, timeout=60.0)
        drainer.join(timeout=60.0)
        assert not drainer.is_alive(), "drain shutdown deadlocked"
        assert not service.running

        statuses = {run_id: store.get(run_id).status for run_id in run_ids}
        assert all(s in ("done", "cancelled") for s in statuses.values()), statuses

    def test_shutdown_after_recovery_completes_cleanly(self, store):
        for seed in range(2):
            _orphan(store, seed)
        service = SimulationService(store, queue_depth=8, jobs=1).start()
        assert service.shutdown(drain=True, timeout=120.0)
        assert all(r.terminal for r in store.list_runs())
