"""SimulationService end-to-end (in-process): round-trip determinism,
cached resubmission with zero new simulation work, fairness across
tenants, bounded-queue rejection, failure attribution, and drain.

The determinism test is the service's headline contract: a fig2-style
spec submitted through the full validate → hash → queue → dispatch →
store pipeline must produce a stored ``RunResult`` that is *bit
identical* (dataclass equality) to calling
:func:`repro.experiments.base.run_simulation` directly — the service
adds transport and persistence, never physics.
"""

import pytest

from repro.experiments.base import run_simulation
from repro.service import (
    QueueFullError,
    ResultStore,
    ServiceClosedError,
    SimulationService,
    SpecValidationError,
)
from repro.service.schemas import spec_from_dict

#: A fig2-style cell: target app + bandwidth-consuming microbenchmark
#: under the paper's latest-quantum policy (scaled down for test speed).
FIG2_PAYLOAD = {
    "spec": {
        "targets": [{"app": "CG", "work_scale": 0.02}],
        "background": [{"microbench": "BBMA"}],
        "scheduler": {"policy": "latest_quantum"},
        "max_time_us": 200_000,
    }
}


@pytest.fixture
def service():
    store = ResultStore(":memory:")
    svc = SimulationService(store, queue_depth=8, jobs=1).start()
    yield svc
    svc.shutdown(drain=False, timeout=10.0)
    store.close()


class TestRoundTripDeterminism:
    def test_stored_result_equals_direct_run(self, service):
        accepted = service.submit(FIG2_PAYLOAD)
        assert accepted["status"] == "queued"
        record = service.wait(accepted["run_id"], timeout=120.0)
        assert record.status == "done"
        assert record.wall_time_s > 0.0

        served = service.result(accepted["run_id"])
        direct = run_simulation(spec_from_dict(FIG2_PAYLOAD["spec"]))
        assert served == direct  # bit-identical, the full dataclass

    def test_cached_resubmit_runs_nothing(self, service):
        first = service.submit(FIG2_PAYLOAD)
        service.wait(first["run_id"], timeout=120.0)
        executed_before = service.stats().executed_runs
        assert executed_before == 1

        second = service.submit(FIG2_PAYLOAD)
        # Terminal immediately: no queueing, no dispatch, no simulation.
        assert second["status"] == "cached"
        assert second["cached_from"] == first["run_id"]
        record = service.store.get(second["run_id"])
        assert record.terminal and record.wall_time_s == 0.0

        stats = service.stats()
        assert stats.executed_runs == executed_before  # zero new work
        assert stats.cache_hits == 1
        assert service.result(second["run_id"]) == service.result(first["run_id"])

    def test_no_cache_forces_rerun_with_identical_result(self, service):
        first = service.submit(FIG2_PAYLOAD)
        service.wait(first["run_id"], timeout=120.0)
        payload = dict(FIG2_PAYLOAD, no_cache=True)
        second = service.submit(payload)
        assert second["status"] == "queued"
        service.wait(second["run_id"], timeout=120.0)
        assert service.stats().executed_runs == 2
        # Determinism: the re-run reproduces the first result exactly.
        assert service.result(second["run_id"]) == service.result(first["run_id"])

    def test_different_spec_is_not_cache_served(self, service):
        first = service.submit(FIG2_PAYLOAD)
        service.wait(first["run_id"], timeout=120.0)
        other = {"spec": dict(FIG2_PAYLOAD["spec"], seed=43)}
        second = service.submit(other)
        assert second["status"] == "queued"
        assert second["spec_hash"] != first["spec_hash"]


class TestSubmissionErrors:
    def test_invalid_spec_counted_and_not_stored(self, service):
        with pytest.raises(SpecValidationError):
            service.submit({"spec": {"targets": [{"app": "NOPE"}]}})
        stats = service.stats()
        assert stats.rejected_invalid == 1
        assert stats.store_counts == {}  # nothing was persisted

    def test_queue_full_rejects_with_backpressure_semantics(self):
        store = ResultStore(":memory:")
        # No dispatcher: the queue can only fill up.
        service = SimulationService(store, queue_depth=2, jobs=1)
        try:
            service.submit(FIG2_PAYLOAD)
            service.submit({"spec": dict(FIG2_PAYLOAD["spec"], seed=1)})
            with pytest.raises(QueueFullError):
                service.submit({"spec": dict(FIG2_PAYLOAD["spec"], seed=2)})
            stats = service.stats()
            assert stats.rejected_full == 1
            # The rejected submission's store row is closed out, not
            # left dangling in 'queued'.
            assert stats.store_counts.get("cancelled") == 1
        finally:
            store.close()

    def test_draining_service_rejects(self, service):
        service.shutdown(drain=True, timeout=10.0)
        with pytest.raises(ServiceClosedError):
            service.submit(FIG2_PAYLOAD)


class TestFailureAttribution:
    def test_failing_spec_marked_failed_others_complete(self, service):
        # max_time_us too short for the run to finish: SimulationError
        # at execution time (validation cannot catch it).
        doomed = {"spec": {
            "targets": [{"app": "CG", "work_scale": 0.02}],
            "scheduler": "dedicated",
            "max_time_us": 1,
        }}
        good = service.submit(FIG2_PAYLOAD)
        bad = service.submit(doomed)
        good_rec = service.wait(good["run_id"], timeout=120.0)
        bad_rec = service.wait(bad["run_id"], timeout=120.0)
        assert good_rec.status == "done"
        assert bad_rec.status == "failed"
        assert bad_rec.error  # attributed, actionable
        stats = service.stats()
        assert stats.failed_runs == 1 and stats.executed_runs == 1
        assert stats.in_flight == 0


class TestTenancyAndListing:
    def test_runs_listed_per_tenant(self, service):
        a = service.submit(dict(FIG2_PAYLOAD, tenant="alice"))
        b = service.submit(dict(FIG2_PAYLOAD, tenant="bob", no_cache=True))
        service.wait(a["run_id"], timeout=120.0)
        service.wait(b["run_id"], timeout=120.0)
        alice = service.list_runs(tenant="alice")
        assert [r["run_id"] for r in alice] == [a["run_id"]]
        assert len(service.list_runs()) == 2

    def test_poll_reports_lifecycle(self, service):
        accepted = service.submit(FIG2_PAYLOAD)
        record = service.wait(accepted["run_id"], timeout=120.0)
        polled = service.poll(accepted["run_id"])
        assert polled["status"] == "done"
        assert polled["spec_hash"] == accepted["spec_hash"]
        assert polled["finished_at"] >= polled["submitted_at"]
        assert record.run_id == polled["run_id"]


class TestDrain:
    def test_graceful_drain_finishes_backlog(self):
        store = ResultStore(":memory:")
        service = SimulationService(store, queue_depth=16, jobs=1)
        run_ids = []
        for seed in range(3):
            payload = {"spec": dict(FIG2_PAYLOAD["spec"], seed=seed)}
            run_ids.append(service.submit(payload)["run_id"])
        # Start the dispatcher only now: everything is still queued.
        service.start()
        assert service.shutdown(drain=True, timeout=120.0)
        try:
            for run_id in run_ids:
                assert store.get(run_id).status == "done"
            assert not service.running
        finally:
            store.close()

    def test_drainless_shutdown_cancels_backlog(self):
        store = ResultStore(":memory:")
        service = SimulationService(store, queue_depth=16, jobs=1)
        # Dispatcher never started: jobs stay queued until cancelled.
        run_ids = [
            service.submit({"spec": dict(FIG2_PAYLOAD["spec"], seed=s)})["run_id"]
            for s in range(3)
        ]
        service.shutdown(drain=False, timeout=10.0)
        try:
            statuses = {store.get(r).status for r in run_ids}
            assert statuses == {"cancelled"}
            assert service.stats().cancelled == 3
        finally:
            store.close()
