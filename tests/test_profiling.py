"""Tests for the per-phase profiling layer (`repro.profiling`).

Profiling is observability only: enabling it must never change simulated
results, and its counters must be excluded from `RunResult` equality.
"""

import dataclasses

import pytest

from repro import profiling
from repro.experiments.base import SimulationSpec, run_simulation, solo_spec
from repro.parallel import fork_available, run_many
from repro.workloads.microbench import bbma_spec

_SCALE_WORK = 10_000.0


def _spec(seed: int = 1, profile: bool = False) -> SimulationSpec:
    spec = solo_spec(bbma_spec(work_us=_SCALE_WORK), seed=seed)
    return dataclasses.replace(spec, profile=profile)


@pytest.fixture(autouse=True)
def _clean_profiling_state():
    profiling.disable()
    profiling.reset_aggregate()
    yield
    profiling.disable()
    profiling.reset_aggregate()


class TestModuleSwitch:
    def test_default_off(self):
        assert not profiling.enabled()

    def test_enable_disable(self):
        profiling.enable()
        assert profiling.enabled()
        profiling.disable()
        assert not profiling.enabled()

    def test_merge_sums_keys(self):
        acc = {"a": 1.0}
        profiling.merge(acc, {"a": 2.0, "b": 0.5})
        assert acc == {"a": 3.0, "b": 0.5}

    def test_record_and_aggregate(self):
        profiling.record({"solve_calls": 3.0})
        profiling.record({"solve_calls": 2.0, "settle_calls": 1.0})
        assert profiling.aggregate() == {"solve_calls": 5.0, "settle_calls": 1.0}
        profiling.reset_aggregate()
        assert profiling.aggregate() == {}

    def test_record_none_is_noop(self):
        profiling.record(None)
        assert profiling.aggregate() == {}


class TestRunProfile:
    def test_unprofiled_run_has_no_profile(self):
        result = run_simulation(_spec())
        assert result.profile is None

    def test_spec_profile_attaches_snapshot(self):
        result = run_simulation(_spec(profile=True))
        assert result.profile is not None
        assert result.profile["solve_calls"] >= 1
        assert result.profile["settle_calls"] >= 1
        assert result.profile["solve_time_s"] >= 0.0
        assert result.profile["settle_time_s"] > 0.0

    def test_global_switch_profiles_every_run(self):
        profiling.enable()
        result = run_simulation(_spec())
        assert result.profile is not None
        agg = profiling.aggregate()
        assert agg["solve_calls"] == result.profile["solve_calls"]

    def test_profiling_never_changes_results(self):
        plain = run_simulation(_spec())
        profiled = run_simulation(_spec(profile=True))
        assert profiled == plain  # profile/counters excluded from equality
        assert profiled.makespan_us == plain.makespan_us
        assert [a.turnaround_us for a in profiled.apps] == [
            a.turnaround_us for a in plain.apps
        ]

    def test_counter_fields_excluded_from_equality(self):
        base = run_simulation(_spec())
        tweaked = dataclasses.replace(
            base, bus_cache_hits=base.bus_cache_hits + 7, profile={"x": 1.0}
        )
        assert tweaked == base
        changed = dataclasses.replace(base, makespan_us=base.makespan_us + 1.0)
        assert changed != base

    def test_parallel_workers_inherit_global_switch(self):
        if not fork_available():
            pytest.skip("no fork on this platform")
        profiling.enable()
        specs = [_spec(seed=s) for s in (1, 2, 3)]
        results = run_many(specs, jobs=2, chunk_size=2)
        assert all(r.profile is not None for r in results)
