"""Dedicated (pinned) scheduler tests."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.errors import SchedulingError
from repro.hw.machine import Machine
from repro.sched.dedicated import DedicatedScheduler
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.patterns import ConstantPattern


def _setup(n_threads, n_cpus=4, migration_interval=None):
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=n_cpus), engine, TraceRecorder())
    threads = [
        machine.add_thread(
            f"t{i}", ConstantPattern(1.0).bind(np.random.default_rng(i)), 100_000.0
        )
        for i in range(n_threads)
    ]
    sched = DedicatedScheduler(migration_interval)
    sched.attach(machine, engine, np.random.default_rng(99))
    return engine, machine, threads, sched


class TestPinning:
    def test_one_cpu_per_thread(self):
        engine, machine, threads, sched = _setup(3)
        sched.start()
        assert [machine.cpus[i].tid for i in range(3)] == [t.tid for t in threads]
        assert machine.cpus[3].idle

    def test_too_many_threads_rejected(self):
        engine, machine, threads, sched = _setup(5)
        with pytest.raises(SchedulingError):
            sched.start()

    def test_no_migrations_by_default(self):
        engine, machine, threads, sched = _setup(4)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert all(t.migration_count == 0 for t in threads)

    def test_all_threads_complete(self):
        engine, machine, threads, sched = _setup(4)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert machine.all_finished()


class TestMigrationNoise:
    def test_migrations_happen_with_interval(self):
        engine, machine, threads, sched = _setup(4, migration_interval=5_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert sum(t.migration_count for t in threads) > 0
        assert machine.trace.count("sched.migrate") > 0

    def test_invalid_interval_rejected(self):
        with pytest.raises(SchedulingError):
            DedicatedScheduler(0.0)

    def test_deterministic_given_seed(self):
        outcomes = []
        for _ in range(2):
            engine, machine, threads, sched = _setup(4, migration_interval=5_000.0)
            sched.start()
            engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
            outcomes.append([t.finished_at for t in threads])
        assert outcomes[0] == outcomes[1]
