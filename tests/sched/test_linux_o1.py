"""Linux 2.6-style O(1) scheduler tests."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.hw.machine import Machine
from repro.sched.linux_o1 import LinuxO1Scheduler, O1SchedConfig
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.patterns import ConstantPattern


def _setup(n_threads, n_cpus=2, config=None, work=150_000.0):
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=n_cpus), engine, TraceRecorder())
    threads = [
        machine.add_thread(
            f"t{i}",
            ConstantPattern(1.0).bind(np.random.default_rng(i)),
            work,
            footprint_lines=256.0,
        )
        for i in range(n_threads)
    ]
    sched = LinuxO1Scheduler(config)
    sched.attach(machine, engine, np.random.default_rng(7))
    return engine, machine, threads, sched


class TestConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"tick_us": 0.0},
            {"timeslice_us": 0.0},
            {"timeslice_us": 1.0, "tick_us": 10.0},
            {"balance_interval_us": 0.0},
            {"imbalance_threshold": 0},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ConfigError):
            O1SchedConfig(**kw)

    def test_defaults(self):
        cfg = O1SchedConfig()
        assert cfg.timeslice_us == 100_000.0


class TestBasics:
    def test_fills_cpus(self):
        engine, machine, threads, sched = _setup(4)
        sched.start()
        assert all(not c.idle for c in machine.cpus)

    def test_all_complete(self):
        engine, machine, threads, sched = _setup(5)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        assert machine.all_finished()

    def test_per_cpu_fairness(self):
        # 4 equal threads on 2 CPUs: shares within ~35%
        engine, machine, threads, sched = _setup(4, work=400_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        runtimes = [t.run_time_us for t in threads]
        assert max(runtimes) / min(runtimes) < 1.5

    def test_queue_length_inspection(self):
        engine, machine, threads, sched = _setup(6, n_cpus=2)
        sched.start()
        total_waiting = sum(sched.queue_length(i) for i in range(2))
        assert total_waiting == 4  # 6 threads, 2 running


class TestActiveExpired:
    def test_timeslice_rotation(self):
        # 2 threads, 1 cpu: they must alternate at the timeslice scale
        cfg = O1SchedConfig(timeslice_us=20_000.0)
        engine, machine, threads, sched = _setup(2, n_cpus=1, config=cfg, work=100_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        # The O(1) model vacates the CPU at slice end, then dispatches the
        # next thread, so rotation shows up as dispatches (not replacement
        # context switches): ~200ms of work / 20ms slices -> ~10 dispatches.
        assert machine.cpus[0].dispatches >= 8
        # and both threads actually interleaved (neither ran to completion
        # in one go)
        assert abs(threads[0].finished_at - threads[1].finished_at) < 50_000.0

    def test_fewer_migrations_than_o_n(self):
        # The O(1) design's point: per-CPU queues barely migrate.
        engine, machine, threads, sched = _setup(8, n_cpus=4, work=200_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        assert sum(t.migration_count for t in threads) <= 8


class TestBalancing:
    def test_idle_stealing(self):
        # 3 threads on 2 cpus with unequal work: when one queue drains, its
        # cpu steals instead of idling
        engine, machine, threads, sched = _setup(3, n_cpus=2, work=80_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        total_idle = sum(c.idle_time(machine.now) for c in machine.cpus)
        # some tail idling is unavoidable; wholesale idling is not
        assert total_idle < machine.now

    def test_balancer_counts_migrations(self):
        # start everything on cpu0's queue via arrivals-like imbalance:
        # 6 threads on 2 cpus round-robin is balanced, so force imbalance
        # by making cpu1's threads finish quickly
        engine, machine, threads, sched = _setup(6, n_cpus=2, work=50_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        assert sched.balanced_migrations >= 0  # bookkeeping exists and is non-negative


class TestManagerIntegration:
    def test_policy_on_o1_kernel(self):
        from repro.core.policies import QuantaWindowPolicy
        from repro.experiments.base import SimulationSpec, run_simulation
        from repro.workloads.microbench import bbma_spec
        from repro.workloads.suites import paper_app

        cg = paper_app("CG").scaled(0.05)
        spec = SimulationSpec(
            targets=[cg, cg],
            background=[bbma_spec()] * 4,
            scheduler=QuantaWindowPolicy(),
            kernel="linux26",
            seed=1,
        )
        result = run_simulation(spec)
        assert result.mean_target_turnaround_us() > 0

    def test_unknown_kernel_rejected(self):
        from repro.core.policies import QuantaWindowPolicy
        from repro.experiments.base import SimulationSpec, run_simulation
        from repro.workloads.patterns import ConstantPattern
        from repro.workloads.base import ApplicationSpec

        app = ApplicationSpec(
            name="x", n_threads=1, work_per_thread_us=1000.0, pattern=ConstantPattern(1.0)
        )
        with pytest.raises(ConfigError):
            run_simulation(
                SimulationSpec(targets=[app], scheduler=QuantaWindowPolicy(), kernel="bsd")
            )


class TestKernelExperiment:
    def test_runs_and_reports(self):
        from repro.experiments.kernels import format_kernel_experiment, run_kernel_experiment

        rows = run_kernel_experiment(apps=["CG"], work_scale=0.05)
        assert rows[0].name == "CG"
        assert len(rows[0].turnarounds_us) == 4
        assert "EXT-K" in format_kernel_experiment(rows)

    def test_policy_still_wins_for_cg_on_both_kernels(self):
        from repro.experiments.kernels import run_kernel_experiment

        rows = run_kernel_experiment(apps=["CG"], work_scale=0.3)
        cg = rows[0]
        assert cg.improvement("24") > 0.0
        assert cg.improvement("26") > 0.0  # still wins at realistic run lengths
