"""Round-robin gang scheduler tests."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.errors import SchedulingError
from repro.hw.machine import Machine
from repro.sched.base import Job, jobs_from_apps
from repro.sched.gang import RoundRobinGangScheduler
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.base import Application, ApplicationSpec
from repro.workloads.patterns import ConstantPattern


def _setup(widths, n_cpus=4, quantum=10_000.0, work=60_000.0):
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=n_cpus), engine, TraceRecorder())
    apps = []
    for i, w in enumerate(widths):
        spec = ApplicationSpec(
            name=f"app{i}",
            n_threads=w,
            work_per_thread_us=work,
            pattern=ConstantPattern(1.0),
            footprint_lines=256.0,
        )
        apps.append(Application.launch(spec, machine, np.random.default_rng(i)))
    sched = RoundRobinGangScheduler(jobs_from_apps(apps), quantum)
    sched.attach(machine, engine, np.random.default_rng(0))
    return engine, machine, apps, sched


class TestGangInvariant:
    def test_threads_of_selected_job_coscheduled(self):
        engine, machine, apps, sched = _setup([2, 2, 2])
        sched.start()
        running = set(machine.running_tids())
        for app in apps:
            tids = set(app.tids)
            assert tids <= running or tids.isdisjoint(running)

    def test_invariant_holds_across_quanta(self):
        engine, machine, apps, sched = _setup([2, 2, 1, 1, 2])

        violations = []

        def check():
            running = set(machine.running_tids())
            for app in apps:
                live = {t.tid for t in app.threads if not t.finished}
                if not live:
                    continue
                inter = live & running
                if inter and inter != live:
                    violations.append((machine.now, app.name))
            if not machine.all_finished():
                engine.schedule_after(1_000.0, check)

        sched.start()
        engine.schedule_after(500.0, check)
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert violations == []

    def test_oversized_job_rejected(self):
        engine, machine, apps, sched = _setup([5])
        with pytest.raises(SchedulingError):
            sched.start()


class TestRotation:
    def test_all_jobs_eventually_finish(self):
        engine, machine, apps, sched = _setup([2, 2, 2, 1, 1, 1])
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        assert machine.all_finished()

    def test_rotation_changes_selection(self):
        engine, machine, apps, sched = _setup([2, 2, 2, 2])
        sched.start()
        first = set(machine.running_tids())
        engine.run_until(10_001.0, advancer=machine)
        second = set(machine.running_tids())
        assert first != second

    def test_quantum_records_traced(self):
        engine, machine, apps, sched = _setup([2, 2])
        sched.start()
        engine.run_until(35_000.0, advancer=machine)
        assert machine.trace.count("gang.quantum") >= 3


class TestBackfill:
    def test_freed_cpus_backfilled_mid_quantum(self):
        # app0 finishes quickly; a waiting job should take its CPUs before
        # the next quantum boundary.
        engine, machine, apps, sched = _setup([2, 2, 2], quantum=1_000_000.0, work=5_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e10)
        # with a single effective quantum, completion requires backfilling
        assert machine.all_finished()
        assert machine.now < 3_000_000.0
