"""Linux 2.4-like scheduler tests."""

import numpy as np
import pytest

from repro.config import LinuxSchedConfig, MachineConfig
from repro.hw.machine import Machine
from repro.sched.linux import LinuxScheduler
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder
from repro.workloads.patterns import ConstantPattern


def _setup(n_threads, n_cpus=2, config=None, work=50_000.0, seed=0):
    engine = Engine()
    machine = Machine(MachineConfig(n_cpus=n_cpus), engine, TraceRecorder())
    threads = [
        machine.add_thread(
            f"t{i}",
            ConstantPattern(1.0).bind(np.random.default_rng(i)),
            work,
            footprint_lines=512.0,
        )
        for i in range(n_threads)
    ]
    sched = LinuxScheduler(config or LinuxSchedConfig(rebalance_prob=0.0))
    sched.attach(machine, engine, np.random.default_rng(seed))
    return engine, machine, threads, sched


class TestBasicDispatch:
    def test_fills_cpus_at_start(self):
        engine, machine, threads, sched = _setup(4, n_cpus=2)
        sched.start()
        assert all(not c.idle for c in machine.cpus)

    def test_fewer_threads_than_cpus(self):
        engine, machine, threads, sched = _setup(1, n_cpus=2)
        sched.start()
        busy = [c for c in machine.cpus if not c.idle]
        assert len(busy) == 1

    def test_all_threads_complete(self):
        engine, machine, threads, sched = _setup(4, n_cpus=2)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert machine.all_finished()


class TestTimeSharing:
    def test_cpu_time_roughly_fair(self):
        # 4 equal threads on 2 CPUs: each should get ~50% of the wall time.
        engine, machine, threads, sched = _setup(4, n_cpus=2, work=200_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        runtimes = [t.run_time_us for t in threads]
        assert max(runtimes) / min(runtimes) < 1.35

    def test_context_switches_happen(self):
        engine, machine, threads, sched = _setup(4, n_cpus=2)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert sum(c.context_switches for c in machine.cpus) > 0

    def test_epochs_advance(self):
        engine, machine, threads, sched = _setup(4, n_cpus=2, work=300_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert sched.epochs > 0

    def test_no_thread_starves(self):
        engine, machine, threads, sched = _setup(6, n_cpus=2, work=100_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert all(t.finished for t in threads)


class TestGoodness:
    def test_affinity_bonus(self):
        engine, machine, threads, sched = _setup(2, n_cpus=2)
        sched.start()
        t = threads[0]
        assert t.cpu is not None
        home = t.cpu
        away = 1 - home
        g_home = sched.goodness(t, home)
        g_away = sched.goodness(t, away)
        assert g_home == g_away + sched.config.affinity_bonus

    def test_exhausted_counter_zero_goodness(self):
        engine, machine, threads, sched = _setup(1, n_cpus=1)
        sched.start()
        sched._counters[threads[0].tid] = 0
        assert sched.goodness(threads[0], 0) == 0.0


class TestBlockIntegration:
    def test_blocked_thread_descheduled_and_replaced(self):
        engine, machine, threads, sched = _setup(3, n_cpus=2)
        sched.start()
        running = machine.running_tids()
        waiting = [t.tid for t in threads if t.tid not in running]
        victim = running[0]
        machine.set_blocked(victim, True)
        sched.on_block_change(victim, True)
        assert victim not in machine.running_tids()
        assert waiting[0] in machine.running_tids()

    def test_unblocked_thread_takes_idle_cpu(self):
        engine, machine, threads, sched = _setup(2, n_cpus=2)
        sched.start()
        victim = machine.running_tids()[0]
        machine.set_blocked(victim, True)
        sched.on_block_change(victim, True)
        machine.set_blocked(victim, False)
        sched.on_block_change(victim, False)
        assert victim in machine.running_tids()

    def test_wakeup_prefers_last_cpu(self):
        engine, machine, threads, sched = _setup(2, n_cpus=2)
        sched.start()
        t = threads[0]
        last = t.cpu
        machine.set_blocked(t.tid, True)
        sched.on_block_change(t.tid, True)
        machine.set_blocked(t.tid, False)
        sched.on_block_change(t.tid, False)
        assert t.cpu == last


class TestDesynchronization:
    def test_initial_counters_randomized(self):
        engine, machine, threads, sched = _setup(8, n_cpus=4, seed=3)
        sched.start()
        counters = {sched.counter(t.tid) for t in threads}
        assert len(counters) > 1  # not all identical

    def test_rebalance_produces_migrations(self):
        cfg = LinuxSchedConfig(rebalance_prob=0.2)
        engine, machine, threads, sched = _setup(4, n_cpus=4, config=cfg, work=200_000.0)
        sched.start()
        engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
        assert sum(t.migration_count for t in threads) > 0

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            cfg = LinuxSchedConfig(rebalance_prob=0.1)
            engine, machine, threads, sched = _setup(6, n_cpus=2, config=cfg, seed=11)
            sched.start()
            engine.run(advancer=machine, stop=machine.all_finished, max_time=1e9)
            results.append([t.finished_at for t in threads])
        assert results[0] == results[1]
