"""The exception hierarchy contract."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigError,
        errors.SimulationError,
        errors.SchedulingError,
        errors.ArenaError,
        errors.CounterError,
        errors.WorkloadError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)
